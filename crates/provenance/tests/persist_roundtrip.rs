//! The durable-artifact round-trip contract: a session saved with
//! `Session::save` and reopened — through the owned read path *and* the
//! zero-copy memory-mapped path — answers scenario batches bit-for-bit
//! identically to the in-process session, reports the same sizes, VVS
//! and intern stats, and never compiles (`compile_count() == 0`): the
//! compiled columns are resliced from the file image, not rebuilt.
//!
//! Swept across all three paper workloads (telephony, TPC-H Q10, the
//! supply-chain BOM), every [`Strategy`] variant, and a battery of
//! randomly generated poly-sets.
//!
//! This suite lives in the provenance crate (which owns the format) and
//! drives it through the façade via a dev-dependency cycle — Cargo
//! permits dev-only cycles, and the format's contract *is* a whole-
//! pipeline property.

use provabs_datagen::workload::{Workload, WorkloadConfig, WorkloadData};
use provabs_provenance::monomial::Monomial;
use provabs_provenance::polynomial::Polynomial;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::polyset_to_string;
use provabs_provenance::valuation::Valuation;
use provabs_provenance::var::{VarId, VarTable};
use provabs_scenario::Scenario;
use provabs_session::{ArtifactOrigin, Error, Session, SessionBuilder, Strategy};
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique temp-file path per call; best-effort cleanup via [`TempFile`].
fn temp_artifact(tag: &str) -> TempFile {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "provabs-roundtrip-{}-{}-{tag}.pvabs",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    TempFile(path)
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn fixture(workload: Workload) -> (WorkloadData, Forest) {
    let mut data = workload.generate(&WorkloadConfig {
        scale: 0.05,
        param_modulus: 16,
        seed: 11,
    });
    let forest = data.primary_tree(1, 0);
    (data, forest)
}

/// A bound between the forest's compression floor and the original size,
/// probed through the façade so this suite needs no algorithm crates.
fn attainable_bound(polys: &PolySet<f64>, vars: &VarTable, forest: &Forest) -> usize {
    let total = polys.size_m();
    let mut probe = SessionBuilder::new(polys.clone(), vars.clone())
        .forest(forest.clone())
        .bound(1)
        .build()
        .expect("valid probe");
    let floor = match probe.compress() {
        Ok(r) => r.compressed_size_m,
        Err(Error::Tree(TreeError::BoundUnattainable { best_possible, .. })) => best_possible,
        Err(e) => panic!("floor probe failed: {e}"),
    };
    (floor + (total - floor) / 2).max(1)
}

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Optimal,
        Strategy::Greedy { incremental: true },
        Strategy::Greedy { incremental: false },
        Strategy::Online {
            fraction: 0.5,
            seed: 7,
        },
        Strategy::Competitor,
        Strategy::Brute { cut_limit: 1 << 20 },
        Strategy::None,
    ]
}

fn assert_values_bitwise(a: &[Vec<f64>], b: &[Vec<f64>], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: batch sizes differ");
    for (row_a, row_b) in a.iter().zip(b) {
        assert_eq!(row_a.len(), row_b.len(), "{context}: row lengths differ");
        for (x, y) in row_a.iter().zip(row_b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}: {x} vs {y}");
        }
    }
}

/// Opens `path` through both load paths and asserts each reopened
/// session is indistinguishable from `saved` on the given batch.
fn assert_open_paths_equivalent(
    saved: &mut Session,
    path: &TempFile,
    scenarios: &[Scenario],
    valuations: &[Valuation<f64>],
    context: &str,
) {
    let expected_run = saved.ask(scenarios).expect("known names").values;
    let expected_prepared = saved.ask_prepared(valuations).expect("compressed").values;
    let expected_result = saved.result().expect("compressed").clone();
    let expected_stats = saved.intern_stats();

    for (mapped, mut reopened) in [
        (false, Session::open(&path.0).expect("owned open")),
        (true, Session::open_mapped(&path.0).expect("mapped open")),
    ] {
        let context = format!("{context} / mapped={mapped}");

        // Artifact provenance is observable and correct.
        match reopened.artifact_info() {
            ArtifactOrigin::Opened {
                path: p,
                format_version,
                mapped: m,
            } => {
                assert_eq!(p, &path.0, "{context}");
                assert_eq!(*format_version, 1, "{context}");
                assert_eq!(*m, mapped, "{context}");
            }
            other => panic!("{context}: expected Opened origin, got {other:?}"),
        }
        assert!(
            format!("{reopened:?}").contains("Opened"),
            "{context}: Debug must surface the artifact origin"
        );
        assert_eq!(
            saved.artifact_info(),
            &ArtifactOrigin::Computed,
            "{context}"
        );

        // The opened session is already compressed, with identical
        // selection outcome and configuration.
        assert!(reopened.is_compressed(), "{context}");
        let got = reopened.result().expect("opened compressed").clone();
        assert_eq!(got.vvs, expected_result.vvs, "{context}: VVS differs");
        assert_eq!(got.original_size_m, expected_result.original_size_m);
        assert_eq!(got.original_size_v, expected_result.original_size_v);
        assert_eq!(got.compressed_size_m, expected_result.compressed_size_m);
        assert_eq!(got.compressed_size_v, expected_result.compressed_size_v);
        assert_eq!(reopened.bound(), saved.bound(), "{context}");
        assert_eq!(reopened.strategy(), saved.strategy(), "{context}");
        assert_eq!(
            reopened.abstracted_labels(),
            saved.abstracted_labels(),
            "{context}"
        );

        // Bit-for-bit identical answers, by names and by prepared
        // valuations, without a single compilation: the columns come
        // straight out of the artifact.
        let run = reopened.ask(scenarios).expect("known names").values;
        assert_values_bitwise(&expected_run, &run, &context);
        let prepared = reopened
            .ask_prepared(valuations)
            .expect("compressed")
            .values;
        assert_values_bitwise(&expected_prepared, &prepared, &context);
        let again = reopened.ask(scenarios).expect("known names").values;
        assert_values_bitwise(&run, &again, &context);
        assert_eq!(
            reopened.compile_count(),
            0,
            "{context}: opened sessions never compile for the ask path"
        );

        // Same intern bookkeeping, and the ask path stayed id-only.
        let stats = reopened.intern_stats();
        assert_eq!(
            stats.arena_monomials, expected_stats.arena_monomials,
            "{context}"
        );
        assert_eq!(
            stats.interned_source, expected_stats.interned_source,
            "{context}"
        );
        assert_eq!(
            stats.polyset_materializations, 0,
            "{context}: asks on an opened session must not materialise"
        );

        // The lazily-decoded abstracted set equals the saver's, term for
        // term (this forces the WorkingSlot decode path).
        assert_eq!(
            polyset_to_string(reopened.abstracted().expect("compressed"), reopened.vars()),
            polyset_to_string(saved.abstracted().expect("compressed"), saved.vars()),
            "{context}: abstracted set differs after decode"
        );
    }
}

/// The tentpole acceptance sweep: all three workloads × every strategy,
/// 16-scenario batches, both open paths, bit-for-bit equality with
/// `compile_count() == 0`.
#[test]
fn saved_sessions_answer_identically_for_every_workload_and_strategy() {
    for workload in [
        Workload::Telephony,
        Workload::TpchQ10,
        Workload::SupplyChain,
    ] {
        let (data, forest) = fixture(workload);
        let bound = attainable_bound(&data.polys, &data.vars, &forest);
        for strategy in all_strategies() {
            let context = format!("{} / {strategy:?}", workload.name());
            let mut session = SessionBuilder::new(data.polys.clone(), data.vars.clone())
                .forest(forest.clone())
                .strategy(strategy)
                .bound(bound)
                .build()
                .unwrap_or_else(|e| panic!("{context}: build failed: {e}"));
            session.compress().expect("attainable bound");

            let names = session.abstracted_labels().expect("compressed");
            let scenarios: Vec<Scenario> = (0..16)
                .map(|i| Scenario::random(&names, 0.6, 500 + i))
                .collect();
            let mut val_vars = session.vars().clone();
            let valuations: Vec<Valuation<f64>> = scenarios
                .iter()
                .map(|s| s.valuation(&mut val_vars))
                .collect();

            let file = temp_artifact(workload.name());
            session.save(&file.0).expect("save succeeds");
            assert_open_paths_equivalent(&mut session, &file, &scenarios, &valuations, &context);
        }
    }
}

/// Saving is deterministic: saving the same compressed state twice —
/// before and after evaluations warmed every cache — writes
/// byte-identical files. (This is what makes the ad-hoc freeze inside a
/// pre-evaluation `save` indistinguishable from the cached lowering.)
#[test]
fn save_is_deterministic_and_cache_independent() {
    let (data, forest) = fixture(Workload::Telephony);
    let bound = attainable_bound(&data.polys, &data.vars, &forest);
    let mut session = SessionBuilder::new(data.polys.clone(), data.vars.clone())
        .forest(forest)
        .bound(bound)
        .build()
        .expect("valid");

    // First save: compress has not even run yet (save runs it).
    let cold = temp_artifact("cold");
    session.save(&cold.0).expect("save");
    assert_eq!(session.compile_count(), 0, "save alone must not compile");

    // Warm every cache: asks (freeze), bridges (materialise).
    let names = session.abstracted_labels().expect("compressed");
    let scenarios: Vec<Scenario> = (0..4).map(|i| Scenario::random(&names, 0.6, i)).collect();
    session.ask(&scenarios).expect("known names");
    let _ = session.abstracted();
    let _ = session.original();

    let warm = temp_artifact("warm");
    session.save(&warm.0).expect("save");
    let a = std::fs::read(&cold.0).expect("cold bytes");
    let b = std::fs::read(&warm.0).expect("warm bytes");
    assert_eq!(a, b, "saves before/after cache warm-up must be identical");

    // And a reopened session re-saves the same bytes again.
    let mut reopened = Session::open(&cold.0).expect("open");
    let resaved = temp_artifact("resaved");
    reopened.save(&resaved.0).expect("save");
    let c = std::fs::read(&resaved.0).expect("resaved bytes");
    assert_eq!(a, c, "open → save must reproduce the artifact");
}

/// Reopened sessions serve the *reference* paths too: the uncompiled
/// hash-map engine, the original-side measurements, and the accuracy
/// report — all decoded lazily from the artifact's working sets.
#[test]
fn opened_sessions_serve_reference_paths_and_reports() {
    let (data, forest) = fixture(Workload::TpchQ10);
    let bound = attainable_bound(&data.polys, &data.vars, &forest);
    let mut session = SessionBuilder::new(data.polys.clone(), data.vars.clone())
        .forest(forest)
        .bound(bound)
        .build()
        .expect("valid");
    session.compress().expect("attainable");
    let file = temp_artifact("reference");
    session.save(&file.0).expect("save");

    let names = session.abstracted_labels().expect("compressed");
    let scenarios: Vec<Scenario> = (0..3).map(|i| Scenario::random(&names, 0.6, i)).collect();
    let orig_names: Vec<String> = data.vars.iter().map(|(_, n)| n.to_string()).collect();
    let fine = Scenario::random(&orig_names, 0.5, 99);

    for mut reopened in [
        Session::open(&file.0).expect("open"),
        Session::open_mapped(&file.0).expect("open mapped"),
    ] {
        // The original provenance decodes from the artifact.
        assert_eq!(
            polyset_to_string(reopened.original(), reopened.vars()),
            polyset_to_string(session.original(), session.vars()),
            "original side must round-trip"
        );
        // Accuracy numbers match the saver's bit for bit (both sides
        // deterministic evaluations off equal state).
        let a = session.accuracy_report(&fine).expect("known names");
        let b = reopened.accuracy_report(&fine).expect("known names");
        assert_eq!(a.mean_relative.to_bits(), b.mean_relative.to_bits());
        assert_eq!(a.max_relative.to_bits(), b.max_relative.to_bits());
        // Equivalence error runs on the hash-map reference, whose float
        // summation order legitimately differs after the decode
        // re-interns the maps — both sides must still be float noise.
        let ea = session.equivalence_error(&scenarios).expect("known names");
        let eb = reopened.equivalence_error(&scenarios).expect("known names");
        assert!(ea < 1e-9 && eb < 1e-9, "equivalence noise: {ea} vs {eb}");
        // Speedup reports run (timing-based, not bit-comparable).
        let report = reopened.speedup_report(&scenarios, 2).expect("known");
        assert!(report.original.as_nanos() > 0);
        assert!(report.compressed.as_nanos() > 0);
    }
}

// ---------------------------------------------------------------------
// Random poly-sets: structural fuzz of the codecs through the façade.
// ---------------------------------------------------------------------

/// xorshift64* — deterministic, dependency-free randomness for the
/// generator battery.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A random poly-set over `num_vars` variables: mixed arities, repeated
/// monomials (coefficient accumulation), empty polynomials, higher
/// exponents — every wire-shape corner the codecs must carry.
fn random_polys(rng: &mut Rng, vars: &mut VarTable) -> PolySet<f64> {
    let num_vars = 3 + rng.below(20) as usize;
    let ids: Vec<VarId> = (0..num_vars)
        .map(|i| vars.intern(&format!("v{i}")))
        .collect();
    let num_polys = 1 + rng.below(8) as usize;
    let mut polys = Vec::with_capacity(num_polys);
    for _ in 0..num_polys {
        let num_terms = rng.below(7) as usize; // 0 → empty polynomial
        let mut terms = Vec::with_capacity(num_terms);
        for _ in 0..num_terms {
            let arity = rng.below(4) as usize; // 0 → constant monomial
            let mut factors = Vec::with_capacity(arity);
            for _ in 0..arity {
                let var = ids[rng.below(ids.len() as u64) as usize];
                let exp = 1 + rng.below(3) as u32;
                factors.push((var, exp));
            }
            let coeff = (rng.below(2001) as f64 - 1000.0) / 8.0;
            terms.push((Monomial::from_factors(factors), coeff));
        }
        polys.push(Polynomial::from_terms(terms));
    }
    PolySet::from_vec(polys)
}

/// Twelve random poly-sets (no forest, `Strategy::None`): save → open
/// (both paths) preserves the working sets term-for-term and answers
/// random prepared valuations bit-for-bit.
#[test]
fn random_polysets_roundtrip_bitwise() {
    for seed in 1..=12u64 {
        let mut rng = Rng(0x9E37_79B9 ^ (seed << 16));
        let mut vars = VarTable::new();
        let polys = random_polys(&mut rng, &mut vars);
        let context = format!("seed {seed}");

        let mut session = SessionBuilder::new(polys.clone(), vars.clone())
            .strategy(Strategy::None)
            .build()
            .expect("no forest needed");
        session.compress().expect("identity always works");

        let valuations: Vec<Valuation<f64>> = (0..4)
            .map(|_| {
                let mut val = Valuation::neutral();
                for (id, _) in vars.iter() {
                    if rng.below(3) == 0 {
                        val.assign(id, (rng.below(41) as f64 - 20.0) / 4.0);
                    }
                }
                val
            })
            .collect();

        let file = temp_artifact(&format!("random-{seed}"));
        session.save(&file.0).expect("save");
        let expected = session
            .ask_prepared(&valuations)
            .expect("compressed")
            .values;

        for mut reopened in [
            Session::open(&file.0).expect("open"),
            Session::open_mapped(&file.0).expect("open mapped"),
        ] {
            let got = reopened
                .ask_prepared(&valuations)
                .expect("compressed")
                .values;
            assert_values_bitwise(&expected, &got, &context);
            assert_eq!(reopened.compile_count(), 0, "{context}");
            assert_eq!(
                polyset_to_string(reopened.abstracted().expect("compressed"), reopened.vars()),
                polyset_to_string(session.abstracted().expect("compressed"), session.vars()),
                "{context}: abstracted set differs"
            );
            assert_eq!(
                polyset_to_string(reopened.original(), reopened.vars()),
                polyset_to_string(session.original(), session.vars()),
                "{context}: original set differs"
            );
        }
    }
}
