//! Property suite of the interned provenance currency: for random
//! poly-sets, the interned pipeline round-trips bit-for-bit to the
//! hash-map semantics, and freezing a working set into a
//! `CompiledPolySet` evaluates identically to the `to_polyset` →
//! `compile` round-trip on every evaluation entry point.
//!
//! Coefficients and valuations are integer-valued, so every sum and
//! product is exact in `f64` — equality is decidable and independent of
//! summation order (the one degree of freedom the interned
//! representation has; the documented last-bit caveat of
//! `provabs_provenance::working` never manifests on exact inputs).

use proptest::prelude::*;
use provabs_provenance::compiled::CompiledPolySet;
use provabs_provenance::monomial::Monomial;
use provabs_provenance::polynomial::Polynomial;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::valuation::Valuation;
use provabs_provenance::var::VarId;
use provabs_provenance::working::WorkingSet;

/// A random poly-set over variables v0..v9 with small integer-valued
/// `f64` coefficients.
fn polyset_strategy() -> impl Strategy<Value = PolySet<f64>> {
    prop::collection::vec(
        prop::collection::vec(
            (prop::collection::vec((0u32..10, 1u32..3), 0..4), 1i64..50),
            0..6,
        ),
        0..5,
    )
    .prop_map(|polys| {
        PolySet::from_vec(
            polys
                .into_iter()
                .map(|terms| {
                    Polynomial::from_terms(terms.into_iter().map(|(factors, c)| {
                        (
                            Monomial::from_factors(factors.into_iter().map(|(v, e)| (VarId(v), e))),
                            c as f64,
                        )
                    }))
                })
                .collect(),
        )
    })
}

/// A compatible group: variables drawn from a fixed family that the
/// strategy above places in *separate* monomials often enough — filtered
/// below to groups whose variables never co-occur in one monomial.
fn group_is_compatible(polys: &PolySet<f64>, group: &[VarId]) -> bool {
    polys
        .monomials()
        .all(|(_, m, _)| group.iter().filter(|&&v| m.contains(v)).count() <= 1)
}

/// Integer valuation: deterministic per variable, exact in f64.
fn int_valuation(offset: u32) -> Valuation<f64> {
    let mut val = Valuation::neutral();
    for v in 0..16u32 {
        val.assign(VarId(v), f64::from((v * 7 + offset) % 5));
    }
    val
}

fn assert_polysets_equal(a: &PolySet<f64>, b: &PolySet<f64>) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x, y);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lowering a poly-set into the interned working set and bridging
    /// back is the identity (term sets, coefficients, measures).
    #[test]
    fn ingest_roundtrip_is_identity(polys in polyset_strategy()) {
        let ws = WorkingSet::from_polyset(&polys);
        prop_assert_eq!(ws.size_m(), polys.size_m());
        prop_assert_eq!(ws.size_v(), polys.size_v());
        prop_assert_eq!(ws.num_polys(), polys.len());
        assert_polysets_equal(&ws.to_polyset(), &polys);
        // The live-variable view equals the poly-set's variable set.
        prop_assert_eq!(ws.live_vars(), polys.var_set());
    }

    /// Freezing a working set evaluates bit-for-bit like compiling its
    /// materialisation, on every evaluation entry point.
    #[test]
    fn freeze_equals_compile_of_materialisation(polys in polyset_strategy(), offset in 0u32..5) {
        let ws = WorkingSet::from_polyset(&polys);
        let frozen = ws.freeze();
        let compiled = CompiledPolySet::compile(&ws.to_polyset());
        prop_assert_eq!(frozen.num_polys(), compiled.num_polys());
        prop_assert_eq!(frozen.num_monomials(), compiled.num_monomials());
        prop_assert_eq!(frozen.num_vars(), compiled.num_vars());
        let vals = [int_valuation(offset), Valuation::neutral(), int_valuation(offset + 1)];
        for val in &vals {
            let a = frozen.eval_one(val);
            let b = compiled.eval_one(val);
            let c = val.eval_set(&polys);
            for ((x, y), z) in a.iter().zip(&b).zip(&c) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "freeze vs compile");
                prop_assert_eq!(x.to_bits(), z.to_bits(), "freeze vs hash-map eval");
            }
        }
        // Batch evaluation agrees with single-shot evaluation.
        let batch = frozen.eval_all(&vals);
        for (s, val) in vals.iter().enumerate() {
            prop_assert_eq!(batch[s].clone(), frozen.eval_one(val));
        }
        // And both denote the same poly-set.
        assert_polysets_equal(&frozen.to_polyset(), &compiled.to_polyset());
    }

    /// A group substitution in id space equals `map_vars` on the
    /// hash-map representation, and the predicted monomial loss matches
    /// the actual merge count.
    #[test]
    fn apply_group_and_ml_delta_match_map_vars(polys in polyset_strategy(), pick in prop::collection::vec(0u32..10, 2..4)) {
        let group: Vec<VarId> = {
            let mut g: Vec<VarId> = pick.into_iter().map(VarId).collect();
            g.sort_unstable_by_key(|v| v.0);
            g.dedup();
            g
        };
        prop_assume!(group.len() >= 2);
        prop_assume!(group_is_compatible(&polys, &group));
        let target = VarId(99);
        let affected: Vec<usize> = (0..polys.len()).collect();
        let mut ws = WorkingSet::from_polyset(&polys);
        let predicted = ws.ml_delta_of_group(&group, &affected);
        ws.apply_group(&group, target, &affected);
        let expected = polys.map_vars(|v| if group.contains(&v) { target } else { v });
        prop_assert_eq!(ws.size_m(), expected.size_m());
        prop_assert_eq!(ws.size_v(), expected.size_v());
        prop_assert_eq!(predicted, polys.size_m() - expected.size_m());
        assert_polysets_equal(&ws.to_polyset(), &expected);
        // Freezing the rewritten set still matches the hash-map result.
        let frozen = ws.freeze();
        let val = int_valuation(3);
        let a = frozen.eval_one(&val);
        let b = val.eval_set(&expected);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Wholesale substitutions (the `𝒫↓S` application) agree with
    /// `map_vars` for arbitrary variable maps — including collapsing
    /// maps that merge monomials within a polynomial.
    #[test]
    fn apply_var_map_matches_map_vars(polys in polyset_strategy(), modulus in 1u32..6) {
        let map = |v: VarId| VarId(v.0 % modulus);
        let mut ws = WorkingSet::from_polyset(&polys);
        ws.apply_var_map(map);
        let expected = polys.map_vars(map);
        prop_assert_eq!(ws.size_m(), expected.size_m());
        prop_assert_eq!(ws.size_v(), expected.size_v());
        assert_polysets_equal(&ws.to_polyset(), &expected);
    }

    /// Subsetting (the online-sampling primitive) selects exactly the
    /// indexed polynomials, over the shared arena.
    #[test]
    fn subset_matches_index_selection(polys in polyset_strategy(), mask in prop::collection::vec(any::<bool>(), 0..5)) {
        let indices: Vec<usize> = (0..polys.len())
            .filter(|&i| mask.get(i).copied().unwrap_or(false))
            .collect();
        let ws = WorkingSet::from_polyset(&polys);
        let sub = ws.subset(&indices);
        prop_assert_eq!(sub.num_polys(), indices.len());
        let slice = polys.as_slice();
        let expected = PolySet::from_vec(indices.iter().map(|&i| slice[i].clone()).collect::<Vec<_>>());
        assert_polysets_equal(&sub.to_polyset(), &expected);
    }
}
