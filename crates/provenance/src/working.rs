//! Interned working sets for in-flight abstraction rewrites.
//!
//! The compression algorithms (greedy valid-variable selection above all)
//! repeatedly *rewrite* a poly-set: substitute a small group of variables
//! by one meta-variable, merge the monomials that become equal, measure,
//! repeat. On the [`crate::polynomial::Polynomial`] representation every
//! such step rebuilds whole monomial hash maps — each surviving monomial
//! is re-canonicalised, re-hashed and re-inserted even when the
//! substitution does not touch it.
//!
//! A [`WorkingSet`] avoids that by holding its polynomials over a shared
//! [`MonoArena`] (the interning core of [`crate::intern`]):
//!
//! * each polynomial becomes a map `monomial id → coefficient`, so
//!   merging under a substitution is id remapping plus coefficient
//!   accumulation — no monomial is rebuilt unless the substitution
//!   actually changes it, and cross-polynomial duplicates (the common
//!   case for grouped provenance) are remapped exactly once;
//! * the arena's postings index finds the monomials a group substitution
//!   can touch without scanning anything else;
//! * the arena's memoised *remainder index* — the `M_l` operation of
//!   §4.1 — makes the monomial loss of a candidate group a matter of
//!   `u32` probes instead of monomial construction and hashing.
//!
//! The working set is the *rewriting* view over the arena; freezing it
//! with [`WorkingSet::freeze`] yields the read-only evaluation view
//! ([`crate::compiled::CompiledPolySet`]) by re-slicing the same arena —
//! no intermediate [`PolySet`] is materialised.
//!
//! Term *sets* evolve exactly as under [`Polynomial::map_vars`]: the same
//! monomials exist with the same coefficient sums, and terms whose
//! coefficients cancel to zero are dropped. The only divergence from the
//! hash-map path is the *order* in which merged coefficients are added,
//! which can differ in the last floating-point bit when three or more
//! terms collapse into one (and can only change a term's existence if a
//! sum lands exactly on zero in one order but not another — impossible
//! for the non-negative provenance coefficients the paper's workloads
//! produce, and irrelevant for exact coefficient types).
//!
//! [`Polynomial::map_vars`]: crate::polynomial::Polynomial::map_vars

use crate::coeff::Coefficient;
use crate::compiled::CompiledPolySet;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::intern::MonoArena;
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::polyset::PolySet;
use crate::var::VarId;

pub use crate::intern::MonoId;

/// Reusable scratch state for [`WorkingSet::subset_with`].
///
/// Extracting one subset needs an old-id → new-id remap table sized by
/// the subset's distinct monomials. Callers cutting *many* subsets out of
/// one working set (the shard partitioner above all) reuse one scratch
/// across calls so the table's allocation is paid once and then only
/// grows to the largest subset seen — instead of K fresh tables, each
/// re-growing through the same doubling sequence.
#[derive(Debug, Default)]
pub struct SubsetScratch {
    remap: FxHashMap<MonoId, MonoId>,
}

impl SubsetScratch {
    /// A fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The remap table's current capacity — exposed so tests can assert
    /// that repeated [`WorkingSet::subset_with`] calls stop allocating
    /// once the scratch has warmed up (the subset analogue of the
    /// executor's stable-pointer check).
    pub fn capacity(&self) -> usize {
        self.remap.capacity()
    }
}

/// A poly-set lowered into an interned, id-addressed form that supports
/// cheap incremental substitution. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct WorkingSet<C> {
    /// The shared monomial arena (append-only; also holds monomials that
    /// are no longer live in any polynomial).
    arena: MonoArena,
    /// Per polynomial: live terms as `monomial id → coefficient`.
    terms: Vec<FxHashMap<MonoId, C>>,
}

/// Adds `coeff` to `map[id]`, dropping the entry when the sum vanishes —
/// the id-space analogue of [`Polynomial::add_term`], sharing the one
/// accumulate-and-drop rule ([`crate::intern::accumulate`]).
///
/// [`Polynomial::add_term`]: crate::polynomial::Polynomial::add_term
fn add_term_id<C: Coefficient>(map: &mut FxHashMap<MonoId, C>, id: MonoId, coeff: C) {
    crate::intern::accumulate(map, id, coeff);
}

impl<C: Coefficient> WorkingSet<C> {
    /// Lowers a poly-set: interns every distinct monomial and builds the
    /// id-keyed term maps plus the postings index.
    pub fn from_polyset(polys: &PolySet<C>) -> Self {
        let mut ws = Self {
            arena: MonoArena::new(),
            terms: Vec::with_capacity(polys.len()),
        };
        for p in polys.iter() {
            let mut map = FxHashMap::default();
            map.reserve(p.size_m());
            for (m, c) in p.iter() {
                let id = ws.arena.intern(m.clone());
                // Input polynomials never store duplicate monomials, so
                // plain insertion suffices (and never drops a term).
                map.insert(id, c.clone());
            }
            ws.terms.push(map);
        }
        ws
    }

    /// Assembles a working set from an already-built arena and term maps
    /// — the constructor used by producers that intern during emission
    /// (e.g. the engine's interned aggregation) instead of lowering a
    /// materialised [`PolySet`].
    ///
    /// # Panics
    /// Panics (in debug builds) if any term id is outside the arena.
    pub fn from_parts(arena: MonoArena, terms: Vec<FxHashMap<MonoId, C>>) -> Self {
        debug_assert!(terms
            .iter()
            .all(|map| map.keys().all(|&id| (id as usize) < arena.len())));
        Self { arena, terms }
    }

    /// The shared monomial arena.
    pub fn arena(&self) -> &MonoArena {
        &self.arena
    }

    /// Mutable access to the arena — for consumers that extend it with
    /// derived monomials (remainders, products). The arena is append-only,
    /// so growing it never invalidates the working set's term ids.
    pub fn arena_mut(&mut self) -> &mut MonoArena {
        &mut self.arena
    }

    /// The interned monomial behind `id`.
    pub fn mono(&self, id: MonoId) -> &Monomial {
        self.arena.mono(id)
    }

    /// Number of polynomials.
    pub fn num_polys(&self) -> usize {
        self.terms.len()
    }

    /// Live monomial ids of polynomial `pi`, in unspecified order.
    pub fn poly_mono_ids(&self, pi: usize) -> impl Iterator<Item = MonoId> + '_ {
        self.terms[pi].keys().copied()
    }

    /// Live terms of polynomial `pi` as `(monomial id, coefficient)`, in
    /// unspecified order.
    pub fn poly_terms(&self, pi: usize) -> impl Iterator<Item = (MonoId, &C)> {
        self.terms[pi].iter().map(|(&id, c)| (id, c))
    }

    /// Live monomial ids of polynomial `pi` in ascending id order — the
    /// working set's canonical term order, used by every deterministic
    /// export ([`to_polyset`](Self::to_polyset),
    /// [`freeze`](Self::freeze)).
    pub fn sorted_mono_ids(&self, pi: usize) -> Vec<MonoId> {
        let mut ids: Vec<MonoId> = self.terms[pi].keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The coefficient of monomial `id` in polynomial `pi` (zero if the
    /// term is not live there).
    pub fn coeff(&self, pi: usize, id: MonoId) -> C {
        self.terms[pi].get(&id).cloned().unwrap_or_else(C::zero)
    }

    /// `|P_pi|_M` of the current (rewritten) polynomial.
    pub fn poly_size_m(&self, pi: usize) -> usize {
        self.terms[pi].len()
    }

    /// `|𝒫|_M` of the current working set.
    pub fn size_m(&self) -> usize {
        self.terms.iter().map(FxHashMap::len).sum()
    }

    /// Liveness bitmap over the arena: `true` for ids live in at least
    /// one polynomial.
    fn live_flags(&self) -> Vec<bool> {
        let mut live = vec![false; self.arena.len()];
        for map in &self.terms {
            for &id in map.keys() {
                live[id as usize] = true;
            }
        }
        live
    }

    /// The distinct variables across the live monomials (`V(𝒫)`).
    pub fn live_vars(&self) -> FxHashSet<VarId> {
        let live = self.live_flags();
        let mut vars: FxHashSet<VarId> = FxHashSet::default();
        for (idx, is_live) in live.iter().enumerate() {
            if *is_live {
                vars.extend(self.arena.mono(idx as MonoId).vars());
            }
        }
        vars
    }

    /// Iterates the distinct live monomials (each arena entry at most
    /// once, regardless of how many polynomials share it).
    pub fn live_monomials(&self) -> impl Iterator<Item = &Monomial> {
        let live = self.live_flags();
        (0..self.arena.len())
            .filter(move |&idx| live[idx])
            .map(|idx| self.arena.mono(idx as MonoId))
    }

    /// `|𝒫|_V`: distinct variables across the live monomials.
    pub fn size_v(&self) -> usize {
        self.live_vars().len()
    }

    /// A working set over the polynomials at `indices` (in that order) —
    /// the sampling primitive of the online compression scheme. The
    /// sample gets a *fresh, compacted* arena holding only its own live
    /// monomials, so a small sample costs work proportional to the
    /// sample, not to the full provenance (a 5 % draw does not drag the
    /// other 95 %'s arena, postings and memo indexes along).
    pub fn subset(&self, indices: &[usize]) -> Self {
        self.subset_with(indices, &mut SubsetScratch::new())
    }

    /// [`subset`](Self::subset) with caller-provided scratch: the remap
    /// table lives in `scratch` (cleared, capacity retained), so a loop
    /// cutting many subsets — the shard partitioner constructs K
    /// per-shard working sets from one source — allocates the table once
    /// instead of per call. Per-polynomial term maps are pre-reserved
    /// from the source sizes.
    pub fn subset_with(&self, indices: &[usize], scratch: &mut SubsetScratch) -> Self {
        let mut arena = MonoArena::new();
        let remap = &mut scratch.remap;
        remap.clear();
        remap.reserve(indices.iter().map(|&pi| self.terms[pi].len()).sum());
        let terms = indices
            .iter()
            .map(|&pi| {
                let mut map = FxHashMap::default();
                map.reserve(self.terms[pi].len());
                for (&id, c) in &self.terms[pi] {
                    let new_id = *remap
                        .entry(id)
                        .or_insert_with(|| arena.intern(self.arena.mono(id).clone()));
                    map.insert(new_id, c.clone());
                }
                map
            })
            .collect();
        Self { arena, terms }
    }

    /// Appends every polynomial of `other` to this working set, interning
    /// `other`'s live monomials into this arena — the chunk-ingest
    /// primitive of the streaming compression path: each incoming chunk
    /// is absorbed into the carried (already compressed) working set, and
    /// only then rewritten under the cumulative abstraction.
    ///
    /// Polynomial indices of `other` shift by `self.num_polys()`; the
    /// polynomials themselves are unchanged (same term sets, same
    /// coefficients).
    pub fn absorb(&mut self, other: &WorkingSet<C>) {
        let mut remap: FxHashMap<MonoId, MonoId> = FxHashMap::default();
        remap.reserve(other.arena.len());
        self.terms.reserve(other.num_polys());
        for src in &other.terms {
            let mut map = FxHashMap::default();
            map.reserve(src.len());
            for (&id, c) in src {
                let new_id = *remap
                    .entry(id)
                    .or_insert_with(|| self.arena.intern(other.arena.mono(id).clone()));
                map.insert(new_id, c.clone());
            }
            self.terms.push(map);
        }
    }

    /// The monomials a substitution of `group` can touch, paired with the
    /// group variable each contains. Compatibility (at most one tree node
    /// per monomial) makes the pairing unique.
    fn group_occurrences(&self, group: &[VarId]) -> Vec<(MonoId, VarId)> {
        let mut out = Vec::new();
        for &v in group {
            out.extend(self.arena.postings_of(v).iter().map(|&m| (m, v)));
        }
        out
    }

    /// The monomial-loss delta of substituting every variable of `group`
    /// by one shared fresh variable, measured over the polynomials at
    /// `affected` — identical to the reference
    /// `ml_delta_of_group_in` computation, in id space: two monomials
    /// merge iff their remainders and exponents agree within the same
    /// polynomial.
    ///
    /// `affected` must cover every polynomial containing a `group`
    /// variable (a superset is fine); `group` variables must belong to at
    /// most one monomial each (forest compatibility).
    pub fn ml_delta_of_group(&mut self, group: &[VarId], affected: &[usize]) -> usize {
        if group.len() < 2 {
            return 0;
        }
        let occurrences = self.group_occurrences(group);
        // Relevant monomials with their remainder class, as both a probe
        // list and a lookup map: per polynomial the cheaper side wins.
        let mut probe: Vec<(MonoId, u64)> = Vec::with_capacity(occurrences.len());
        let mut lookup: FxHashMap<MonoId, u64> = FxHashMap::default();
        lookup.reserve(occurrences.len());
        for (m, v) in occurrences {
            let (rem, exp) = self.arena.remainder(m, v);
            let key = (u64::from(rem) << 32) | u64::from(exp);
            probe.push((m, key));
            lookup.insert(m, key);
        }
        let mut delta = 0usize;
        let mut distinct: FxHashSet<u64> = FxHashSet::default();
        for &pi in affected {
            let map = &self.terms[pi];
            distinct.clear();
            let mut matches = 0usize;
            if probe.len() <= map.len() {
                for &(m, key) in &probe {
                    if map.contains_key(&m) {
                        matches += 1;
                        distinct.insert(key);
                    }
                }
            } else {
                for &m in map.keys() {
                    if let Some(&key) = lookup.get(&m) {
                        matches += 1;
                        distinct.insert(key);
                    }
                }
            }
            delta += matches - distinct.len();
        }
        delta
    }

    /// Applies the group substitution `group → target` to the polynomials
    /// at `affected`, merging coefficients of monomials that become equal
    /// (and dropping exact-zero sums) — semantically `map_vars` restricted
    /// to the affected polynomials, at id-remap cost.
    ///
    /// `affected` must cover every polynomial containing a `group`
    /// variable; polynomials outside it are left untouched (they contain
    /// no group variable, so the substitution fixes them anyway).
    pub fn apply_group(&mut self, group: &[VarId], target: VarId, affected: &[usize]) {
        let occurrences = self.group_occurrences(group);
        let mut remap: Vec<(MonoId, MonoId)> = Vec::with_capacity(occurrences.len());
        let mut lookup: FxHashMap<MonoId, MonoId> = FxHashMap::default();
        lookup.reserve(occurrences.len());
        for (m, v) in occurrences {
            let (rem, exp) = self.arena.remainder(m, v);
            let new_id = self.arena.mul_factor(rem, target, exp);
            remap.push((m, new_id));
            lookup.insert(m, new_id);
        }
        for &pi in affected {
            let map = &mut self.terms[pi];
            if remap.len() <= map.len() {
                // Move only the touched terms.
                for &(old, new) in &remap {
                    if let Some(c) = map.remove(&old) {
                        add_term_id(map, new, c);
                    }
                }
            } else {
                // Small polynomial: rebuilding beats probing the remap.
                let old = std::mem::take(map);
                let map = &mut self.terms[pi];
                map.reserve(old.len());
                for (m, c) in old {
                    add_term_id(map, lookup.get(&m).copied().unwrap_or(m), c);
                }
            }
        }
    }

    /// Applies an arbitrary variable substitution to *every* polynomial —
    /// the wholesale `𝒫↓S` application, with each distinct monomial
    /// remapped exactly once no matter how many polynomials share it.
    pub fn apply_var_map(&mut self, mut map: impl FnMut(VarId) -> VarId) {
        let mut remap: FxHashMap<MonoId, MonoId> = FxHashMap::default();
        for pi in 0..self.terms.len() {
            let old = std::mem::take(&mut self.terms[pi]);
            let mut new_map: FxHashMap<MonoId, C> = FxHashMap::default();
            new_map.reserve(old.len());
            for (m, c) in old {
                let id = match remap.get(&m) {
                    Some(&id) => id,
                    None => {
                        let moved = self.arena.mono(m).vars().any(|v| map(v) != v);
                        let id = if moved {
                            let mono = self.arena.mono(m).map_vars(&mut map);
                            self.arena.intern(mono)
                        } else {
                            m
                        };
                        remap.insert(m, id);
                        id
                    }
                };
                add_term_id(&mut new_map, id, c);
            }
            self.terms[pi] = new_map;
        }
    }

    /// Freezes the working set into the read-only columnar evaluation
    /// view: an arena re-slice, without any intermediate [`PolySet`]
    /// materialisation. Shorthand for [`CompiledPolySet::from_working`].
    pub fn freeze(&self) -> CompiledPolySet<C> {
        CompiledPolySet::from_working(self)
    }

    /// Materialises the current state back into a hash-map-backed
    /// [`PolySet`] — the *semantics bridge* out of the interned currency,
    /// mirroring [`crate::compiled::CompiledPolySet::to_polyset`]. Terms
    /// are emitted in the canonical ascending-id order, so the result is
    /// deterministic for a given working set. Hot paths should stay in id
    /// space ([`freeze`](Self::freeze)); this exists for interop,
    /// display, and the reference engines.
    pub fn to_polyset(&self) -> PolySet<C> {
        PolySet::from_vec(
            (0..self.terms.len())
                .map(|pi| {
                    Polynomial::from_terms(
                        self.sorted_mono_ids(pi)
                            .into_iter()
                            .map(|id| (self.arena.mono(id).clone(), self.terms[pi][&id].clone())),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn poly(terms: &[(&[(u32, u32)], f64)]) -> Polynomial<f64> {
        Polynomial::from_terms(terms.iter().map(|(fs, c)| {
            (
                Monomial::from_factors(fs.iter().map(|&(i, e)| (v(i), e))),
                *c,
            )
        }))
    }

    /// Two polynomials sharing the monomial structure of the running
    /// example: leaves 1, 2, 3 under a group, context variables 8, 9.
    fn sample() -> PolySet<f64> {
        PolySet::from_vec(vec![
            poly(&[
                (&[(1, 1), (8, 1)], 2.0),
                (&[(2, 1), (8, 1)], 3.0),
                (&[(3, 1), (9, 1)], 4.0),
            ]),
            poly(&[(&[(1, 1), (8, 1)], 5.0), (&[(2, 1), (9, 1)], 6.0)]),
        ])
    }

    #[test]
    fn lowering_preserves_sizes_and_roundtrips() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        assert_eq!(ws.num_polys(), 2);
        assert_eq!(ws.size_m(), polys.size_m());
        assert_eq!(ws.size_v(), polys.size_v());
        assert_eq!(ws.poly_size_m(0), 3);
        let back = ws.to_polyset();
        for (a, b) in back.iter().zip(polys.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn shared_monomials_are_interned_once() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        // 1·8 appears in both polynomials but is stored once.
        assert_eq!(ws.arena().len(), 4);
        assert_eq!(ws.live_monomials().count(), 4);
    }

    #[test]
    fn apply_group_matches_map_vars() {
        let polys = sample();
        let group = [v(1), v(2), v(3)];
        let target = v(20);
        let mut ws = WorkingSet::from_polyset(&polys);
        ws.apply_group(&group, target, &[0, 1]);
        let expected = polys.map_vars(|x| if group.contains(&x) { target } else { x });
        for (a, b) in ws.to_polyset().iter().zip(expected.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(ws.size_m(), expected.size_m());
        assert_eq!(ws.size_v(), expected.size_v());
    }

    #[test]
    fn apply_group_merges_coefficients_and_drops_zeros() {
        let polys = PolySet::from_vec(vec![poly(&[
            (&[(1, 1), (8, 1)], 2.5),
            (&[(2, 1), (8, 1)], -2.5),
            (&[(3, 1), (8, 1)], 1.0),
        ])]);
        let mut ws = WorkingSet::from_polyset(&polys);
        // Merging 1 and 2 cancels exactly; 3 stays apart.
        ws.apply_group(&[v(1), v(2)], v(20), &[0]);
        assert_eq!(ws.size_m(), 1);
        let back = ws.to_polyset();
        let got = back.iter().next().expect("one poly");
        assert_eq!(
            got.coefficient(&Monomial::from_vars([v(3), v(8)])),
            1.0,
            "{got:?}"
        );
    }

    #[test]
    fn ml_delta_matches_actual_merge_count() {
        let polys = sample();
        let group = [v(1), v(2), v(3)];
        let mut ws = WorkingSet::from_polyset(&polys);
        let predicted = ws.ml_delta_of_group(&group, &[0, 1]);
        let merged = polys.map_vars(|x| if group.contains(&x) { v(20) } else { x });
        assert_eq!(predicted, polys.size_m() - merged.size_m());
        // Only 1·8 and 2·8 of the first polynomial merge (3 pairs with 9).
        assert_eq!(predicted, 1);
        // Sub-groups and singleton groups.
        assert_eq!(ws.ml_delta_of_group(&[v(1)], &[0, 1]), 0);
        assert_eq!(ws.ml_delta_of_group(&[v(1), v(3)], &[0, 1]), 0);
    }

    #[test]
    fn ml_delta_respects_exponents() {
        // x²·a never merges with y·a (exponents differ after mapping).
        let polys = PolySet::from_vec(vec![poly(&[
            (&[(1, 2), (8, 1)], 1.0),
            (&[(2, 1), (8, 1)], 2.0),
            (&[(3, 1), (8, 1)], 3.0),
        ])]);
        let mut ws = WorkingSet::from_polyset(&polys);
        assert_eq!(ws.ml_delta_of_group(&[v(1), v(2), v(3)], &[0]), 1);
    }

    #[test]
    fn sequential_groups_compose() {
        let polys = sample();
        let mut ws = WorkingSet::from_polyset(&polys);
        ws.apply_group(&[v(1), v(2)], v(20), &[0, 1]);
        ws.apply_group(&[v(20), v(3)], v(21), &[0, 1]);
        let expected = polys.map_vars(|x| {
            if [v(1), v(2), v(3)].contains(&x) {
                v(21)
            } else {
                x
            }
        });
        for (a, b) in ws.to_polyset().iter().zip(expected.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn apply_var_map_is_wholesale_substitution() {
        let polys = sample();
        let mut ws = WorkingSet::from_polyset(&polys);
        let map = |x: VarId| if x.0 <= 3 { v(30) } else { x };
        ws.apply_var_map(map);
        let expected = polys.map_vars(map);
        assert_eq!(ws.size_m(), expected.size_m());
        assert_eq!(ws.size_v(), expected.size_v());
        for (a, b) in ws.to_polyset().iter().zip(expected.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_polyset_works() {
        let polys: PolySet<f64> = PolySet::new();
        let mut ws = WorkingSet::from_polyset(&polys);
        assert_eq!(ws.size_m(), 0);
        assert_eq!(ws.size_v(), 0);
        ws.apply_var_map(|x| x);
        assert!(ws.to_polyset().is_empty());
    }

    #[test]
    fn subset_compacts_the_arena() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        let sub = ws.subset(&[1]);
        assert_eq!(sub.num_polys(), 1);
        assert_eq!(sub.poly_size_m(0), 2);
        // Only the sample's own live monomials are carried over.
        assert_eq!(sub.arena().len(), 2);
        let back = sub.to_polyset();
        assert_eq!(back.iter().next(), polys.iter().nth(1));
    }

    #[test]
    fn subset_with_reuses_the_scratch_table() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        let mut scratch = SubsetScratch::new();
        // Warm-up call sizes the remap table.
        let warm = ws.subset_with(&[0, 1], &mut scratch);
        assert_eq!(warm.size_m(), ws.size_m());
        let warmed_capacity = scratch.capacity();
        assert!(warmed_capacity > 0);
        // Every further subset of no larger footprint must run inside the
        // retained capacity — no re-allocation of the remap table.
        for indices in [&[0usize, 1][..], &[1], &[0], &[1, 0]] {
            let sub = ws.subset_with(indices, &mut scratch);
            assert_eq!(sub.num_polys(), indices.len());
            assert_eq!(
                scratch.capacity(),
                warmed_capacity,
                "subset_with grew the scratch on {indices:?}"
            );
        }
        // And the output matches the allocating variant exactly.
        let a = ws.subset(&[1]);
        let b = ws.subset_with(&[1], &mut scratch);
        for (x, y) in a.to_polyset().iter().zip(b.to_polyset().iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn absorb_appends_and_interns_once() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        let mut acc: WorkingSet<f64> = WorkingSet::from_parts(MonoArena::new(), Vec::new());
        acc.absorb(&ws.subset(&[0]));
        acc.absorb(&ws.subset(&[1]));
        assert_eq!(acc.num_polys(), 2);
        assert_eq!(acc.size_m(), ws.size_m());
        assert_eq!(acc.size_v(), ws.size_v());
        // The shared monomial 1·8 is interned once across the two chunks.
        assert_eq!(acc.arena().len(), ws.arena().len());
        for (a, b) in acc.to_polyset().iter().zip(polys.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        let arena = ws.arena().clone();
        let terms: Vec<FxHashMap<MonoId, f64>> = (0..ws.num_polys())
            .map(|pi| ws.poly_terms(pi).map(|(id, c)| (id, *c)).collect())
            .collect();
        let rebuilt = WorkingSet::from_parts(arena, terms);
        for (a, b) in rebuilt.to_polyset().iter().zip(polys.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn coeff_and_sorted_ids() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        let ids = ws.sorted_mono_ids(0);
        assert_eq!(ids.len(), 3);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let m18 = ws
            .arena()
            .get(&Monomial::from_vars([v(1), v(8)]))
            .expect("interned");
        assert_eq!(ws.coeff(0, m18), 2.0);
        assert_eq!(ws.coeff(1, m18), 5.0);
        let m39 = ws
            .arena()
            .get(&Monomial::from_vars([v(3), v(9)]))
            .expect("interned");
        assert_eq!(ws.coeff(1, m39), 0.0, "3·9 not live in P2");
    }
}
