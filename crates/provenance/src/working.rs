//! Interned columnar working sets for in-flight abstraction rewrites.
//!
//! The compression algorithms (greedy valid-variable selection above all)
//! repeatedly *rewrite* a poly-set: substitute a small group of variables
//! by one meta-variable, merge the monomials that become equal, measure,
//! repeat. On the [`crate::polynomial::Polynomial`] representation every
//! such step rebuilds whole monomial hash maps — each surviving monomial
//! is re-canonicalised, re-hashed and re-inserted even when the
//! substitution does not touch it.
//!
//! A [`WorkingSet`] avoids that by interning every distinct monomial once
//! into an append-only arena with dense `u32` ids (the densification idea
//! of [`crate::compiled`], applied to rewriting instead of evaluation):
//!
//! * each polynomial becomes a map `monomial id → coefficient`, so
//!   merging under a substitution is id remapping plus coefficient
//!   accumulation — no monomial is rebuilt unless the substitution
//!   actually changes it, and cross-polynomial duplicates (the common
//!   case for grouped provenance) are remapped exactly once;
//! * a postings index `variable → monomial ids` finds the monomials a
//!   group substitution can touch without scanning anything else;
//! * a memoised *remainder index* `(monomial id, variable) → (remainder
//!   id, exponent)` — the `M_l` operation of §4.1 — makes the monomial
//!   loss of a candidate group a matter of `u32` probes instead of
//!   monomial construction and hashing.
//!
//! Term *sets* evolve exactly as under [`Polynomial::map_vars`]: the same
//! monomials exist with the same coefficient sums, and terms whose
//! coefficients cancel to zero are dropped. The only divergence from the
//! hash-map path is the *order* in which merged coefficients are added,
//! which can differ in the last floating-point bit when three or more
//! terms collapse into one (and can only change a term's existence if a
//! sum lands exactly on zero in one order but not another — impossible
//! for the non-negative provenance coefficients the paper's workloads
//! produce, and irrelevant for exact coefficient types).
//!
//! [`Polynomial::map_vars`]: crate::polynomial::Polynomial::map_vars

use crate::coeff::Coefficient;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::polyset::PolySet;
use crate::var::VarId;

/// Dense id of an interned monomial within a [`WorkingSet`] arena.
pub type MonoId = u32;

/// A poly-set lowered into an interned, id-addressed form that supports
/// cheap incremental substitution. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct WorkingSet<C> {
    /// Arena of distinct monomials, append-only; `MonoId` indexes it.
    monos: Vec<Monomial>,
    /// Interning map over the arena.
    ids: FxHashMap<Monomial, MonoId>,
    /// Per polynomial: live terms as `monomial id → coefficient`.
    terms: Vec<FxHashMap<MonoId, C>>,
    /// `variable → sorted monomial ids containing it`. Covers every
    /// arena entry (including ids no longer live in any polynomial —
    /// probes against the term maps filter those out).
    mono_postings: FxHashMap<VarId, Vec<MonoId>>,
    /// Memoised remainders: `(monomial, removed variable) → (remainder
    /// monomial, exponent the variable had)`. Valid forever because the
    /// arena is append-only.
    remainders: FxHashMap<(MonoId, VarId), (MonoId, u32)>,
}

/// Adds `coeff` to `map[id]`, dropping the entry when the sum vanishes —
/// the id-space analogue of [`Polynomial::add_term`].
///
/// [`Polynomial::add_term`]: crate::polynomial::Polynomial::add_term
fn add_term_id<C: Coefficient>(map: &mut FxHashMap<MonoId, C>, id: MonoId, coeff: C) {
    if coeff.is_zero() {
        return;
    }
    use std::collections::hash_map::Entry;
    match map.entry(id) {
        Entry::Occupied(mut e) => {
            let sum = e.get().add(&coeff);
            if sum.is_zero() {
                e.remove();
            } else {
                e.insert(sum);
            }
        }
        Entry::Vacant(e) => {
            e.insert(coeff);
        }
    }
}

impl<C: Coefficient> WorkingSet<C> {
    /// Lowers a poly-set: interns every distinct monomial and builds the
    /// id-keyed term maps plus the postings index.
    pub fn from_polyset(polys: &PolySet<C>) -> Self {
        let mut ws = Self {
            monos: Vec::new(),
            ids: FxHashMap::default(),
            terms: Vec::with_capacity(polys.len()),
            mono_postings: FxHashMap::default(),
            remainders: FxHashMap::default(),
        };
        for p in polys.iter() {
            let mut map = FxHashMap::default();
            map.reserve(p.size_m());
            for (m, c) in p.iter() {
                let id = ws.intern(m.clone());
                // Input polynomials never store duplicate monomials, so
                // plain insertion suffices (and never drops a term).
                map.insert(id, c.clone());
            }
            ws.terms.push(map);
        }
        ws
    }

    /// Interns `mono`, registering a fresh id in the postings index on
    /// first sight. Ids grow monotonically, so postings stay sorted by
    /// construction.
    fn intern(&mut self, mono: Monomial) -> MonoId {
        if let Some(&id) = self.ids.get(&mono) {
            return id;
        }
        let id = MonoId::try_from(self.monos.len()).expect("more than u32::MAX monomials");
        for v in mono.vars() {
            self.mono_postings.entry(v).or_default().push(id);
        }
        self.monos.push(mono.clone());
        self.ids.insert(mono, id);
        id
    }

    /// The interned monomial behind `id`.
    pub fn mono(&self, id: MonoId) -> &Monomial {
        &self.monos[id as usize]
    }

    /// Number of polynomials.
    pub fn num_polys(&self) -> usize {
        self.terms.len()
    }

    /// Live monomial ids of polynomial `pi`, in unspecified order.
    pub fn poly_mono_ids(&self, pi: usize) -> impl Iterator<Item = MonoId> + '_ {
        self.terms[pi].keys().copied()
    }

    /// `|P_pi|_M` of the current (rewritten) polynomial.
    pub fn poly_size_m(&self, pi: usize) -> usize {
        self.terms[pi].len()
    }

    /// `|𝒫|_M` of the current working set.
    pub fn size_m(&self) -> usize {
        self.terms.iter().map(FxHashMap::len).sum()
    }

    /// `|𝒫|_V`: distinct variables across the live monomials.
    pub fn size_v(&self) -> usize {
        let mut live = vec![false; self.monos.len()];
        for map in &self.terms {
            for &id in map.keys() {
                live[id as usize] = true;
            }
        }
        let mut vars: FxHashSet<VarId> = FxHashSet::default();
        for (id, mono) in self.monos.iter().enumerate() {
            if live[id] {
                vars.extend(mono.vars());
            }
        }
        vars.len()
    }

    /// The memoised `M_l` operation: remainder id and exponent of `v` in
    /// monomial `id` (`v` must occur in it).
    fn remainder(&mut self, id: MonoId, v: VarId) -> (MonoId, u32) {
        if let Some(&r) = self.remainders.get(&(id, v)) {
            return r;
        }
        let (rem, exp) = self.monos[id as usize].remove_var(v);
        debug_assert!(exp > 0, "remainder of an absent variable");
        let rem_id = self.intern(rem);
        self.remainders.insert((id, v), (rem_id, exp));
        (rem_id, exp)
    }

    /// The monomials a substitution of `group` can touch, paired with the
    /// group variable each contains. Compatibility (at most one tree node
    /// per monomial) makes the pairing unique.
    fn group_occurrences(&self, group: &[VarId]) -> Vec<(MonoId, VarId)> {
        let mut out = Vec::new();
        for &v in group {
            if let Some(list) = self.mono_postings.get(&v) {
                out.extend(list.iter().map(|&m| (m, v)));
            }
        }
        out
    }

    /// The monomial-loss delta of substituting every variable of `group`
    /// by one shared fresh variable, measured over the polynomials at
    /// `affected` — identical to the reference
    /// `ml_delta_of_group_in` computation, in id space: two monomials
    /// merge iff their remainders and exponents agree within the same
    /// polynomial.
    ///
    /// `affected` must cover every polynomial containing a `group`
    /// variable (a superset is fine); `group` variables must belong to at
    /// most one monomial each (forest compatibility).
    pub fn ml_delta_of_group(&mut self, group: &[VarId], affected: &[usize]) -> usize {
        if group.len() < 2 {
            return 0;
        }
        let occurrences = self.group_occurrences(group);
        // Relevant monomials with their remainder class, as both a probe
        // list and a lookup map: per polynomial the cheaper side wins.
        let mut probe: Vec<(MonoId, u64)> = Vec::with_capacity(occurrences.len());
        let mut lookup: FxHashMap<MonoId, u64> = FxHashMap::default();
        lookup.reserve(occurrences.len());
        for (m, v) in occurrences {
            let (rem, exp) = self.remainder(m, v);
            let key = (u64::from(rem) << 32) | u64::from(exp);
            probe.push((m, key));
            lookup.insert(m, key);
        }
        let mut delta = 0usize;
        let mut distinct: FxHashSet<u64> = FxHashSet::default();
        for &pi in affected {
            let map = &self.terms[pi];
            distinct.clear();
            let mut matches = 0usize;
            if probe.len() <= map.len() {
                for &(m, key) in &probe {
                    if map.contains_key(&m) {
                        matches += 1;
                        distinct.insert(key);
                    }
                }
            } else {
                for &m in map.keys() {
                    if let Some(&key) = lookup.get(&m) {
                        matches += 1;
                        distinct.insert(key);
                    }
                }
            }
            delta += matches - distinct.len();
        }
        delta
    }

    /// Applies the group substitution `group → target` to the polynomials
    /// at `affected`, merging coefficients of monomials that become equal
    /// (and dropping exact-zero sums) — semantically `map_vars` restricted
    /// to the affected polynomials, at id-remap cost.
    ///
    /// `affected` must cover every polynomial containing a `group`
    /// variable; polynomials outside it are left untouched (they contain
    /// no group variable, so the substitution fixes them anyway).
    pub fn apply_group(&mut self, group: &[VarId], target: VarId, affected: &[usize]) {
        let occurrences = self.group_occurrences(group);
        let mut remap: Vec<(MonoId, MonoId)> = Vec::with_capacity(occurrences.len());
        let mut lookup: FxHashMap<MonoId, MonoId> = FxHashMap::default();
        lookup.reserve(occurrences.len());
        for (m, v) in occurrences {
            let (rem, exp) = self.remainder(m, v);
            let merged = self.monos[rem as usize].mul(&Monomial::from_factors([(target, exp)]));
            let new_id = self.intern(merged);
            remap.push((m, new_id));
            lookup.insert(m, new_id);
        }
        for &pi in affected {
            let map = &mut self.terms[pi];
            if remap.len() <= map.len() {
                // Move only the touched terms.
                for &(old, new) in &remap {
                    if let Some(c) = map.remove(&old) {
                        add_term_id(map, new, c);
                    }
                }
            } else {
                // Small polynomial: rebuilding beats probing the remap.
                let old = std::mem::take(map);
                let map = &mut self.terms[pi];
                map.reserve(old.len());
                for (m, c) in old {
                    add_term_id(map, lookup.get(&m).copied().unwrap_or(m), c);
                }
            }
        }
    }

    /// Applies an arbitrary variable substitution to *every* polynomial —
    /// the wholesale `𝒫↓S` application, with each distinct monomial
    /// remapped exactly once no matter how many polynomials share it.
    pub fn apply_var_map(&mut self, mut map: impl FnMut(VarId) -> VarId) {
        let mut remap: FxHashMap<MonoId, MonoId> = FxHashMap::default();
        for pi in 0..self.terms.len() {
            let old = std::mem::take(&mut self.terms[pi]);
            let mut new_map: FxHashMap<MonoId, C> = FxHashMap::default();
            new_map.reserve(old.len());
            for (m, c) in old {
                let id = match remap.get(&m) {
                    Some(&id) => id,
                    None => {
                        let moved = self.monos[m as usize].vars().any(|v| map(v) != v);
                        let id = if moved {
                            let mono = self.monos[m as usize].map_vars(&mut map);
                            self.intern(mono)
                        } else {
                            m
                        };
                        remap.insert(m, id);
                        id
                    }
                };
                add_term_id(&mut new_map, id, c);
            }
            self.terms[pi] = new_map;
        }
    }

    /// Materialises the current state back into a hash-map-backed
    /// [`PolySet`] (the semantics bridge, mirroring
    /// [`crate::compiled::CompiledPolySet::to_polyset`]).
    pub fn to_polyset(&self) -> PolySet<C> {
        PolySet::from_vec(
            self.terms
                .iter()
                .map(|map| {
                    Polynomial::from_terms(
                        map.iter()
                            .map(|(&id, c)| (self.monos[id as usize].clone(), c.clone())),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn poly(terms: &[(&[(u32, u32)], f64)]) -> Polynomial<f64> {
        Polynomial::from_terms(terms.iter().map(|(fs, c)| {
            (
                Monomial::from_factors(fs.iter().map(|&(i, e)| (v(i), e))),
                *c,
            )
        }))
    }

    /// Two polynomials sharing the monomial structure of the running
    /// example: leaves 1, 2, 3 under a group, context variables 8, 9.
    fn sample() -> PolySet<f64> {
        PolySet::from_vec(vec![
            poly(&[
                (&[(1, 1), (8, 1)], 2.0),
                (&[(2, 1), (8, 1)], 3.0),
                (&[(3, 1), (9, 1)], 4.0),
            ]),
            poly(&[(&[(1, 1), (8, 1)], 5.0), (&[(2, 1), (9, 1)], 6.0)]),
        ])
    }

    #[test]
    fn lowering_preserves_sizes_and_roundtrips() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        assert_eq!(ws.num_polys(), 2);
        assert_eq!(ws.size_m(), polys.size_m());
        assert_eq!(ws.size_v(), polys.size_v());
        assert_eq!(ws.poly_size_m(0), 3);
        let back = ws.to_polyset();
        for (a, b) in back.iter().zip(polys.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn shared_monomials_are_interned_once() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        // 1·8 appears in both polynomials but is stored once.
        assert_eq!(ws.monos.len(), 4);
    }

    #[test]
    fn apply_group_matches_map_vars() {
        let polys = sample();
        let group = [v(1), v(2), v(3)];
        let target = v(20);
        let mut ws = WorkingSet::from_polyset(&polys);
        ws.apply_group(&group, target, &[0, 1]);
        let expected = polys.map_vars(|x| if group.contains(&x) { target } else { x });
        for (a, b) in ws.to_polyset().iter().zip(expected.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(ws.size_m(), expected.size_m());
        assert_eq!(ws.size_v(), expected.size_v());
    }

    #[test]
    fn apply_group_merges_coefficients_and_drops_zeros() {
        let polys = PolySet::from_vec(vec![poly(&[
            (&[(1, 1), (8, 1)], 2.5),
            (&[(2, 1), (8, 1)], -2.5),
            (&[(3, 1), (8, 1)], 1.0),
        ])]);
        let mut ws = WorkingSet::from_polyset(&polys);
        // Merging 1 and 2 cancels exactly; 3 stays apart.
        ws.apply_group(&[v(1), v(2)], v(20), &[0]);
        assert_eq!(ws.size_m(), 1);
        let back = ws.to_polyset();
        let got = back.iter().next().expect("one poly");
        assert_eq!(
            got.coefficient(&Monomial::from_vars([v(3), v(8)])),
            1.0,
            "{got:?}"
        );
    }

    #[test]
    fn ml_delta_matches_actual_merge_count() {
        let polys = sample();
        let group = [v(1), v(2), v(3)];
        let mut ws = WorkingSet::from_polyset(&polys);
        let predicted = ws.ml_delta_of_group(&group, &[0, 1]);
        let merged = polys.map_vars(|x| if group.contains(&x) { v(20) } else { x });
        assert_eq!(predicted, polys.size_m() - merged.size_m());
        // Only 1·8 and 2·8 of the first polynomial merge (3 pairs with 9).
        assert_eq!(predicted, 1);
        // Sub-groups and singleton groups.
        assert_eq!(ws.ml_delta_of_group(&[v(1)], &[0, 1]), 0);
        assert_eq!(ws.ml_delta_of_group(&[v(1), v(3)], &[0, 1]), 0);
    }

    #[test]
    fn ml_delta_respects_exponents() {
        // x²·a never merges with y·a (exponents differ after mapping).
        let polys = PolySet::from_vec(vec![poly(&[
            (&[(1, 2), (8, 1)], 1.0),
            (&[(2, 1), (8, 1)], 2.0),
            (&[(3, 1), (8, 1)], 3.0),
        ])]);
        let mut ws = WorkingSet::from_polyset(&polys);
        assert_eq!(ws.ml_delta_of_group(&[v(1), v(2), v(3)], &[0]), 1);
    }

    #[test]
    fn sequential_groups_compose() {
        let polys = sample();
        let mut ws = WorkingSet::from_polyset(&polys);
        ws.apply_group(&[v(1), v(2)], v(20), &[0, 1]);
        ws.apply_group(&[v(20), v(3)], v(21), &[0, 1]);
        let expected = polys.map_vars(|x| {
            if [v(1), v(2), v(3)].contains(&x) {
                v(21)
            } else {
                x
            }
        });
        for (a, b) in ws.to_polyset().iter().zip(expected.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn apply_var_map_is_wholesale_substitution() {
        let polys = sample();
        let mut ws = WorkingSet::from_polyset(&polys);
        let map = |x: VarId| if x.0 <= 3 { v(30) } else { x };
        ws.apply_var_map(map);
        let expected = polys.map_vars(map);
        assert_eq!(ws.size_m(), expected.size_m());
        assert_eq!(ws.size_v(), expected.size_v());
        for (a, b) in ws.to_polyset().iter().zip(expected.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_polyset_works() {
        let polys: PolySet<f64> = PolySet::new();
        let mut ws = WorkingSet::from_polyset(&polys);
        assert_eq!(ws.size_m(), 0);
        assert_eq!(ws.size_v(), 0);
        ws.apply_var_map(|x| x);
        assert!(ws.to_polyset().is_empty());
    }
}
