//! Durable compiled artifacts: a versioned on-disk format for the frozen
//! provenance state, with owned and zero-copy (memory-mapped) load paths.
//!
//! Compress-once / ask-many (paper §5) used to mean once *per process*:
//! every restart re-ran compression and recompilation. Since PR 5 the
//! whole compiled state is a handful of dense flat arrays over interned
//! ids — exactly the shape that serialises as plain slice writes and
//! *deserialises as no writes at all*: the heavy arrays are validated in
//! place and resliced straight out of the file bytes.
//!
//! # The container
//!
//! A little-endian binary file:
//!
//! ```text
//! [ magic (8B) | version u32 | flags u32 | section_count u32 | reserved u32 ]
//! [ TOC entry × section_count: id u32, reserved u32, offset u64, len u64, checksum u64 ]
//! [ header checksum u64 ]              — over everything above
//! [ section payloads, each 8-aligned, zero-padded between ]
//! ```
//!
//! Every payload carries its own [`checksum64`] in the TOC; the header
//! and TOC carry a trailing checksum of their own. [`RawArtifact`]
//! validates magic, version, bounds, alignment and all checksums up
//! front — after `open` succeeds, section accesses are infallible.
//!
//! # Two load paths, one validation boundary
//!
//! * **Owned** ([`RawArtifact::open`]): the file is read into an 8-byte-
//!   aligned buffer. Simple, no page-cache coupling.
//! * **Zero-copy** ([`RawArtifact::open_mapped`]): the file is mapped
//!   read-only (the offline `memmap2` shim under `crates/compat/`) and
//!   the compiled columns are resliced from the mapping behind
//!   [`SharedCompiled`] — a warm restart touches only the pages it
//!   evaluates.
//!
//! Either way the *validation boundary* is `open` + the typed section
//! validators ([`SharedCompiled::validate`], [`WorkingSlot::validate`],
//! the var-table / forest / VVS decoders): everything after them is
//! checked-free by construction, and every malformed input is a typed
//! [`PersistError`] — never a panic, never silently-loaded garbage (the
//! `persist_corruption` battery asserts this byte by byte).
//!
//! The section *contents* are layered with the crates that own the data:
//! this module codecs the provenance-owned state (variable table,
//! compiled columns, working sets), `provabs-trees::persist` codecs the
//! forest and VVS, and `provabs-session` assembles whole artifacts via
//! [`ArtifactWriter`] / [`RawArtifact`] (`Session::save` /
//! `Session::open`).

mod artifact;
mod codec;
mod fault;
mod format;

pub use artifact::{ArtifactWriter, RawArtifact};
pub use codec::{
    decode_var_table, encode_compiled, encode_var_table, encode_working, SharedCompiled,
    WorkingSlot,
};
pub use fault::{FaultFs, FaultOp};
pub use format::{checksum64, section, Dec, Enc, FORMAT_VERSION, MAGIC};

use std::fmt;

/// Any way a durable artifact can fail to save, open, or validate.
///
/// Every malformed input maps to a variant here — the corruption battery
/// asserts that no truncation, bit flip, oversized length, bad magic or
/// future version ever panics or loads.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// An I/O failure reading, writing, or mapping the file. Carries the
    /// [`std::io::ErrorKind`] and rendered message (not the `io::Error`
    /// itself, so this type stays `Clone`/`PartialEq` like the rest of
    /// the pipeline's errors).
    Io {
        /// The failed operation's error kind.
        kind: std::io::ErrorKind,
        /// The rendered OS error.
        message: String,
    },
    /// The file does not start with [`MAGIC`] — not a provabs artifact.
    BadMagic,
    /// The artifact declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
        /// The newest version this build understands.
        supported: u32,
    },
    /// The artifact format is little-endian; this host is not.
    UnsupportedHost,
    /// The file ends before the named structure is complete.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A stored checksum does not match the bytes it covers.
    ChecksumMismatch {
        /// Which checksummed region failed (a section name, or
        /// `"header"`).
        context: &'static str,
    },
    /// A section the reader requires is absent from the TOC.
    MissingSection {
        /// The missing section's name.
        name: &'static str,
    },
    /// A payload required by the zero-copy path is not aligned for its
    /// element type.
    Misaligned {
        /// Which payload failed the alignment check.
        context: &'static str,
    },
    /// A structurally invalid payload: out-of-range index, non-canonical
    /// ordering, inconsistent counts, trailing bytes, …
    Malformed {
        /// The section being decoded.
        context: &'static str,
        /// What was wrong with it.
        detail: String,
    },
}

impl PersistError {
    /// Shorthand for a [`PersistError::Malformed`] with a rendered detail.
    pub fn malformed(context: &'static str, detail: impl Into<String>) -> Self {
        PersistError::Malformed {
            context,
            detail: detail.into(),
        }
    }

    pub(crate) fn io(e: std::io::Error) -> Self {
        PersistError::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { kind, message } => {
                write!(f, "artifact i/o error ({kind:?}): {message}")
            }
            PersistError::BadMagic => write!(f, "not a provabs artifact (bad magic)"),
            PersistError::UnsupportedVersion { found, supported } => write!(
                f,
                "artifact format version {found} is newer than the supported {supported}"
            ),
            PersistError::UnsupportedHost => {
                write!(f, "artifacts are little-endian; this host is big-endian")
            }
            PersistError::Truncated { context } => {
                write!(f, "artifact truncated while reading {context}")
            }
            PersistError::ChecksumMismatch { context } => {
                write!(f, "artifact checksum mismatch in {context}")
            }
            PersistError::MissingSection { name } => {
                write!(f, "artifact is missing the {name} section")
            }
            PersistError::Misaligned { context } => {
                write!(
                    f,
                    "artifact payload {context} is misaligned for zero-copy access"
                )
            }
            PersistError::Malformed { context, detail } => {
                write!(f, "malformed artifact section {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_the_failure() {
        let cases: Vec<(PersistError, &str)> = vec![
            (PersistError::BadMagic, "bad magic"),
            (
                PersistError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "version 9",
            ),
            (PersistError::Truncated { context: "TOC" }, "TOC"),
            (
                PersistError::ChecksumMismatch { context: "header" },
                "checksum",
            ),
            (PersistError::MissingSection { name: "vvs" }, "vvs"),
            (PersistError::Misaligned { context: "coeffs" }, "misaligned"),
            (
                PersistError::malformed("forest", "parent after child"),
                "parent after child",
            ),
            (
                PersistError::io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
                "gone",
            ),
        ];
        for (e, needle) in cases {
            assert!(format!("{e}").contains(needle), "{e}");
        }
    }

    #[test]
    fn checksum_is_sensitive_to_single_byte_flips() {
        let mut bytes: Vec<u8> = (0..=255u8).cycle().take(1027).collect();
        let base = checksum64(&bytes);
        assert_eq!(base, checksum64(&bytes), "deterministic");
        for at in [0usize, 7, 8, 512, 1024, 1026] {
            bytes[at] ^= 0x40;
            assert_ne!(base, checksum64(&bytes), "flip at {at} undetected");
            bytes[at] ^= 0x40;
        }
        // Length extension with zeros changes the sum too.
        let mut longer = bytes.clone();
        longer.push(0);
        assert_ne!(checksum64(&bytes), checksum64(&longer));
        assert_ne!(checksum64(&[]), checksum64(&[0]));
    }
}
