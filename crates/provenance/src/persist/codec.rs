//! Section codecs for the provenance-owned artifact state: the variable
//! table, the frozen compiled columns (the zero-copy payload), and the
//! lazily-decoded working sets.
//!
//! Each codec pairs an `encode_*` function (run at save) with a typed
//! validator that is the *only* entry point at open: after
//! [`SharedCompiled::validate`] / [`WorkingSlot::validate`] /
//! [`decode_var_table`] succeed, every later access — including the
//! unsafe reslices behind [`SharedCompiled::view`] — is checked-free by
//! construction.

use super::artifact::{ArtifactBytes, RawArtifact};
use super::format::{section, Dec, Enc};
use super::PersistError;
use crate::compiled::CompiledView;
use crate::fxhash::FxHashMap;
use crate::intern::{accumulate, MonoArena, MonoId};
use crate::monomial::Monomial;
use crate::var::{VarId, VarTable};
use crate::working::WorkingSet;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Variable table
// ---------------------------------------------------------------------

/// Encodes the variable table in id order: count, then per variable a
/// length-prefixed UTF-8 name.
pub fn encode_var_table(vars: &VarTable) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(vars.len() as u64);
    for (_, name) in vars.iter() {
        e.u32(name.len() as u32);
        e.bytes(name.as_bytes());
    }
    e.finish()
}

/// Decodes a variable table, re-interning the names in stored order so
/// ids come back identical. Duplicate or non-UTF-8 names are malformed.
pub fn decode_var_table(bytes: &[u8]) -> Result<VarTable, PersistError> {
    let mut d = Dec::new(bytes, "var table");
    let count = d.count("variable count", bytes.len())?;
    let mut vars = VarTable::new();
    for i in 0..count {
        let len = d.u32()? as usize;
        let raw = d.take(len)?;
        let name = std::str::from_utf8(raw)
            .map_err(|_| PersistError::malformed("var table", format!("name {i} is not UTF-8")))?;
        let id = vars.intern(name);
        if id != VarId(i as u32) {
            // `intern` only returns an old id for a repeated name.
            return Err(PersistError::malformed(
                "var table",
                format!("duplicate variable name {name:?} at id {i}"),
            ));
        }
    }
    d.finish()?;
    Ok(vars)
}

// ---------------------------------------------------------------------
// Compiled columns (the zero-copy payload)
// ---------------------------------------------------------------------

/// Encodes the six compiled columns: four `u64` counts, then
/// `coeffs: f64×monos` (8-aligned at section offset 32),
/// `mono_ends: u32×monos`, `poly_ends: u32×polys`,
/// `factor_vars: u32×factors`, `factor_exps: u32×factors`,
/// `vars: u32×vars`. The section length is exactly determined by the
/// counts, which is what lets [`SharedCompiled::validate`] reject any
/// length lie up front.
pub fn encode_compiled(view: CompiledView<'_, f64>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(view.poly_ends.len() as u64);
    e.u64(view.coeffs.len() as u64);
    e.u64(view.factor_vars.len() as u64);
    e.u64(view.vars.len() as u64);
    for &c in view.coeffs {
        e.f64(c);
    }
    e.u32s(view.mono_ends);
    e.u32s(view.poly_ends);
    e.u32s(view.factor_vars);
    e.u32s(view.factor_exps);
    for &v in view.vars {
        e.u32(v.0);
    }
    e.finish()
}

/// Reslices validated bytes as `&[u32]`.
///
/// # Safety
/// `bytes` must be 4-aligned and a multiple of 4 long (both established
/// by the validators before any range is stored).
unsafe fn as_u32s(bytes: &[u8]) -> &[u32] {
    debug_assert_eq!(bytes.as_ptr().align_offset(4), 0);
    debug_assert_eq!(bytes.len() % 4, 0);
    // SAFETY: alignment and length are validated; u32 accepts all bit
    // patterns.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
}

/// Reslices validated bytes as `&[f64]`.
///
/// # Safety
/// `bytes` must be 8-aligned and a multiple of 8 long.
unsafe fn as_f64s(bytes: &[u8]) -> &[f64] {
    debug_assert_eq!(bytes.as_ptr().align_offset(8), 0);
    debug_assert_eq!(bytes.len() % 8, 0);
    // SAFETY: alignment and length are validated; f64 accepts all bit
    // patterns (NaN payloads round-trip as stored).
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const f64, bytes.len() / 8) }
}

/// Reslices validated bytes as `&[VarId]` — sound because [`VarId`] is
/// `#[repr(transparent)]` over `u32`.
///
/// # Safety
/// `bytes` must be 4-aligned and a multiple of 4 long.
unsafe fn as_varids(bytes: &[u8]) -> &[VarId] {
    debug_assert_eq!(bytes.as_ptr().align_offset(4), 0);
    debug_assert_eq!(bytes.len() % 4, 0);
    // SAFETY: as above, plus VarId's transparent layout over u32.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const VarId, bytes.len() / 4) }
}

/// The compiled columns of an opened artifact, shared with the artifact
/// bytes themselves: six validated ranges into the owned-or-mapped file
/// image, resliced on demand as a [`CompiledView`] without copying a
/// single column. Cloning is an `Arc` bump.
#[derive(Clone, Debug)]
pub struct SharedCompiled {
    bytes: Arc<ArtifactBytes>,
    coeffs: Range<usize>,
    mono_ends: Range<usize>,
    poly_ends: Range<usize>,
    factor_vars: Range<usize>,
    factor_exps: Range<usize>,
    vars: Range<usize>,
}

impl SharedCompiled {
    /// Validates the `COMPILED_ABS` section of `art` and captures the
    /// six column ranges.
    ///
    /// This is the whole validation boundary for the zero-copy path:
    /// counts must reproduce the section length exactly; the prefix-end
    /// columns must be monotone and consistent; every factor must index
    /// a declared local variable with exponent ≥ 1; every local variable
    /// must index the artifact's variable table (`num_table_vars`); and
    /// the `f64` column must be 8-aligned. After this, every access via
    /// [`view`](Self::view) — including the SIMD kernels' raw column
    /// sweeps — is in bounds by construction.
    pub fn validate(art: &RawArtifact, num_table_vars: usize) -> Result<Self, PersistError> {
        const CTX: &str = "compiled columns";
        let file_range =
            art.section_range(section::COMPILED_ABS)
                .ok_or(PersistError::MissingSection {
                    name: "compiled columns",
                })?;
        let bytes = &art.bytes_arc().as_slice()[file_range.clone()];
        let mut d = Dec::new(bytes, CTX);
        let num_polys = d.count("polynomial count", bytes.len())?;
        let num_monos = d.count("monomial count", bytes.len())?;
        let num_factors = d.count("factor count", bytes.len())?;
        let num_vars = d.count("variable count", bytes.len())?;
        let expected = 32usize
            .checked_add(num_monos.checked_mul(12).ok_or_else(overflow)?)
            .and_then(|n| n.checked_add(num_polys.checked_mul(4)?))
            .and_then(|n| n.checked_add(num_factors.checked_mul(8)?))
            .and_then(|n| n.checked_add(num_vars.checked_mul(4)?))
            .ok_or_else(overflow)?;
        if expected != bytes.len() {
            return Err(PersistError::malformed(
                CTX,
                format!(
                    "counts require {expected} bytes, section has {}",
                    bytes.len()
                ),
            ));
        }
        let at = file_range.start + 32;
        let coeffs = at..at + num_monos * 8;
        let mono_ends = coeffs.end..coeffs.end + num_monos * 4;
        let poly_ends = mono_ends.end..mono_ends.end + num_polys * 4;
        let factor_vars = poly_ends.end..poly_ends.end + num_factors * 4;
        let factor_exps = factor_vars.end..factor_vars.end + num_factors * 4;
        let vars = factor_exps.end..factor_exps.end + num_vars * 4;
        debug_assert_eq!(vars.end, file_range.end);
        let data = art.bytes_arc().as_slice();
        if data[coeffs.clone()].as_ptr().align_offset(8) != 0 {
            return Err(PersistError::Misaligned { context: "coeffs" });
        }
        if data[mono_ends.clone()].as_ptr().align_offset(4) != 0 {
            return Err(PersistError::Misaligned {
                context: "compiled index columns",
            });
        }
        // Structural validation over the typed columns.
        // SAFETY: alignment checked just above; lengths are multiples of
        // the element size by construction of the ranges.
        let mono_ends_s = unsafe { as_u32s(&data[mono_ends.clone()]) };
        let poly_ends_s = unsafe { as_u32s(&data[poly_ends.clone()]) };
        let factor_vars_s = unsafe { as_u32s(&data[factor_vars.clone()]) };
        let factor_exps_s = unsafe { as_u32s(&data[factor_exps.clone()]) };
        let vars_s = unsafe { as_u32s(&data[vars.clone()]) };
        check_prefix_ends(CTX, "mono_ends", mono_ends_s, num_factors)?;
        check_prefix_ends(CTX, "poly_ends", poly_ends_s, num_monos)?;
        if num_polys == 0 && num_monos != 0 {
            return Err(PersistError::malformed(
                CTX,
                "monomials without polynomials",
            ));
        }
        if num_monos == 0 && num_factors != 0 {
            return Err(PersistError::malformed(CTX, "factors without monomials"));
        }
        for (i, &v) in factor_vars_s.iter().enumerate() {
            if v as usize >= num_vars {
                return Err(PersistError::malformed(
                    CTX,
                    format!("factor {i} references local variable {v} of {num_vars}"),
                ));
            }
        }
        for (i, &e) in factor_exps_s.iter().enumerate() {
            if e == 0 {
                return Err(PersistError::malformed(
                    CTX,
                    format!("factor {i} has exponent 0"),
                ));
            }
        }
        for (i, &v) in vars_s.iter().enumerate() {
            if v as usize >= num_table_vars {
                return Err(PersistError::malformed(
                    CTX,
                    format!("local variable {i} maps to id {v} outside the variable table"),
                ));
            }
        }
        Ok(Self {
            bytes: Arc::clone(art.bytes_arc()),
            coeffs,
            mono_ends,
            poly_ends,
            factor_vars,
            factor_exps,
            vars,
        })
    }

    /// The columns as the common evaluator currency — indistinguishable
    /// from [`CompiledPolySet::view`](crate::compiled::CompiledPolySet::view)
    /// to every engine.
    pub fn view(&self) -> CompiledView<'_, f64> {
        let data = self.bytes.as_slice();
        // SAFETY: every range was validated (bounds, alignment, element-
        // size multiples) by `validate` before this value existed.
        unsafe {
            CompiledView {
                coeffs: as_f64s(&data[self.coeffs.clone()]),
                mono_ends: as_u32s(&data[self.mono_ends.clone()]),
                poly_ends: as_u32s(&data[self.poly_ends.clone()]),
                factor_vars: as_u32s(&data[self.factor_vars.clone()]),
                factor_exps: as_u32s(&data[self.factor_exps.clone()]),
                vars: as_varids(&data[self.vars.clone()]),
            }
        }
    }
}

fn overflow() -> PersistError {
    PersistError::malformed("compiled columns", "count arithmetic overflows")
}

/// Checks a prefix-end column: non-decreasing, each entry within the
/// target arena, final entry covering it exactly (when non-empty).
fn check_prefix_ends(
    ctx: &'static str,
    what: &str,
    ends: &[u32],
    arena_len: usize,
) -> Result<(), PersistError> {
    let mut prev = 0u32;
    for (i, &e) in ends.iter().enumerate() {
        if e < prev || e as usize > arena_len {
            return Err(PersistError::malformed(
                ctx,
                format!("{what}[{i}] = {e} is not a monotone prefix end within {arena_len}"),
            ));
        }
        prev = e;
    }
    if ends.last().is_some_and(|&e| e as usize != arena_len) {
        return Err(PersistError::malformed(
            ctx,
            format!("{what} ends at {prev}, arena has {arena_len}"),
        ));
    }
    if ends.is_empty() && arena_len != 0 {
        return Err(PersistError::malformed(
            ctx,
            format!("{what} is empty but its arena has {arena_len} entries"),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Working sets (lazy payloads)
// ---------------------------------------------------------------------

/// Encodes a working set: arena length and polynomial count, the arena's
/// monomials in id order (including entries no longer live — term ids
/// index the arena positionally), then each polynomial's live terms in
/// canonical ascending-id order.
pub fn encode_working(ws: &WorkingSet<f64>) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(ws.arena().len() as u64);
    e.u64(ws.num_polys() as u64);
    for id in 0..ws.arena().len() {
        let m = ws.arena().mono(id as MonoId);
        e.u32(m.num_vars() as u32);
        for (v, exp) in m.factors() {
            e.u32(v.0);
            e.u32(exp);
        }
    }
    for pi in 0..ws.num_polys() {
        let ids = ws.sorted_mono_ids(pi);
        e.u32(ids.len() as u32);
        for id in ids {
            e.u32(id);
            e.f64(ws.coeff(pi, id));
        }
    }
    e.finish()
}

/// A validated-but-undecoded working-set section: the structural scan ran
/// at open (so decoding cannot fail), but the hash maps and arena are
/// only materialised when [`decode`](Self::decode) is called — a session
/// that never bridges back to `PolySet` form never pays for them.
#[derive(Clone, Debug)]
pub struct WorkingSlot {
    bytes: Arc<ArtifactBytes>,
    range: Range<usize>,
    arena_len: usize,
    num_polys: usize,
}

impl WorkingSlot {
    /// Validates the working-set section `id` of `art` (reported as
    /// `name`): every factor references the variable table and is
    /// strictly increasing by variable with exponent ≥ 1 (the canonical
    /// monomial form), every term id indexes the arena, and the payload
    /// is consumed exactly.
    pub fn validate(
        art: &RawArtifact,
        id: u32,
        name: &'static str,
        num_table_vars: usize,
    ) -> Result<Self, PersistError> {
        let file_range = art
            .section_range(id)
            .ok_or(PersistError::MissingSection { name })?;
        let bytes = &art.bytes_arc().as_slice()[file_range.clone()];
        let mut d = Dec::new(bytes, name);
        let arena_len = d.count("arena length", bytes.len())?;
        let num_polys = d.count("polynomial count", bytes.len())?;
        for i in 0..arena_len {
            let nfac = d.u32()? as usize;
            let mut prev: Option<u32> = None;
            for _ in 0..nfac {
                let v = d.u32()?;
                let exp = d.u32()?;
                if v as usize >= num_table_vars {
                    return Err(PersistError::malformed(
                        name,
                        format!("monomial {i} references variable {v} outside the table"),
                    ));
                }
                if prev.is_some_and(|p| p >= v) {
                    return Err(PersistError::malformed(
                        name,
                        format!("monomial {i} factors are not strictly increasing"),
                    ));
                }
                if exp == 0 {
                    return Err(PersistError::malformed(
                        name,
                        format!("monomial {i} has a zero exponent"),
                    ));
                }
                prev = Some(v);
            }
        }
        for pi in 0..num_polys {
            let nterms = d.u32()? as usize;
            for _ in 0..nterms {
                let id = d.u32()?;
                let _coeff = d.f64()?;
                if id as usize >= arena_len {
                    return Err(PersistError::malformed(
                        name,
                        format!("polynomial {pi} references monomial {id} of {arena_len}"),
                    ));
                }
            }
        }
        d.finish()?;
        Ok(Self {
            bytes: Arc::clone(art.bytes_arc()),
            range: file_range,
            arena_len,
            num_polys,
        })
    }

    /// The stored arena length (counting entries that are no longer
    /// live) — cheap observability without decoding.
    pub fn arena_len(&self) -> usize {
        self.arena_len
    }

    /// The stored polynomial count.
    pub fn num_polys(&self) -> usize {
        self.num_polys
    }

    /// Materialises the working set. Infallible: the structural scan in
    /// [`validate`](Self::validate) already admitted these bytes, and
    /// the rebuild re-interns monomials (so even an adversarial section
    /// with duplicate arena entries merges safely via id indirection and
    /// coefficient accumulation rather than panicking).
    pub fn decode(&self) -> WorkingSet<f64> {
        let bytes = &self.bytes.as_slice()[self.range.clone()];
        let mut d = Dec::new(bytes, "validated working set");
        let ok = "validated at open";
        let arena_len = d.count("arena length", bytes.len()).expect(ok);
        let num_polys = d.count("polynomial count", bytes.len()).expect(ok);
        let mut arena = MonoArena::new();
        // Stored id → interned id. Interning dedups, so positions are
        // remapped rather than assumed fresh.
        let mut ids = Vec::with_capacity(arena_len);
        for _ in 0..arena_len {
            let nfac = d.u32().expect(ok) as usize;
            let mono = Monomial::from_factors((0..nfac).map(|_| {
                let v = d.u32().expect(ok);
                let exp = d.u32().expect(ok);
                (VarId(v), exp)
            }));
            ids.push(arena.intern(mono));
        }
        let mut terms = Vec::with_capacity(num_polys);
        for _ in 0..num_polys {
            let nterms = d.u32().expect(ok) as usize;
            let mut map: FxHashMap<MonoId, f64> = FxHashMap::default();
            map.reserve(nterms);
            for _ in 0..nterms {
                let stored = d.u32().expect(ok) as usize;
                let coeff = d.f64().expect(ok);
                accumulate(&mut map, ids[stored], coeff);
            }
            terms.push(map);
        }
        WorkingSet::from_parts(arena, terms)
    }
}

#[cfg(test)]
mod tests {
    use super::super::artifact::ArtifactWriter;
    use super::*;
    use crate::compiled::CompiledPolySet;
    use crate::polynomial::Polynomial;
    use crate::polyset::PolySet;
    use crate::valuation::Valuation;

    fn sample_polys() -> PolySet<f64> {
        let poly = |terms: &[(&[(u32, u32)], f64)]| {
            Polynomial::from_terms(terms.iter().map(|(fs, c)| {
                (
                    Monomial::from_factors(fs.iter().map(|&(i, e)| (VarId(i), e))),
                    *c,
                )
            }))
        };
        PolySet::from_vec(vec![
            poly(&[(&[(1, 1), (2, 1)], 2.0), (&[(1, 2)], 3.0)]),
            poly(&[(&[(3, 1)], 4.0), (&[], 5.0)]),
            poly(&[]),
        ])
    }

    fn artifact_with(id: u32, payload: Vec<u8>) -> RawArtifact {
        let mut w = ArtifactWriter::new();
        w.section(id, payload);
        RawArtifact::open_bytes(w.to_bytes()).expect("well-formed artifact")
    }

    #[test]
    fn var_table_roundtrips_and_rejects_duplicates() {
        let mut vars = VarTable::new();
        vars.intern_all(["p1", "p2", "mσ·τ", ""]);
        let back = decode_var_table(&encode_var_table(&vars)).expect("roundtrip");
        assert_eq!(back.len(), vars.len());
        for (id, name) in vars.iter() {
            assert_eq!(back.name(id), name);
            assert_eq!(back.lookup(name), Some(id));
        }
        // A hand-rolled payload with a repeated name must be rejected.
        let mut e = Enc::new();
        e.u64(2);
        for _ in 0..2 {
            e.u32(1);
            e.bytes(b"x");
        }
        assert!(matches!(
            decode_var_table(&e.finish()).unwrap_err(),
            PersistError::Malformed {
                context: "var table",
                ..
            }
        ));
        // Invalid UTF-8 likewise.
        let mut e = Enc::new();
        e.u64(1);
        e.u32(2);
        e.bytes(&[0xFF, 0xFE]);
        assert!(decode_var_table(&e.finish()).is_err());
    }

    #[test]
    fn compiled_columns_roundtrip_through_an_artifact() {
        let compiled = CompiledPolySet::compile(&sample_polys());
        let art = artifact_with(section::COMPILED_ABS, encode_compiled(compiled.view()));
        let shared = SharedCompiled::validate(&art, 64).expect("valid columns");
        let view = shared.view();
        assert_eq!(view.num_polys(), compiled.num_polys());
        assert_eq!(view.num_monomials(), compiled.num_monomials());
        assert_eq!(view.vars(), compiled.vars());
        let val = Valuation::neutral().set(VarId(1), 3.0).set(VarId(2), -0.5);
        let a = view.eval_one(&val);
        let b = compiled.eval_one(&val);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The reslice really is zero-copy: the columns sit inside the
        // artifact's own byte image.
        let data = art.bytes_arc().as_slice();
        let base = data.as_ptr() as usize;
        let coeffs_at = view.coeffs.as_ptr() as usize;
        assert!((base..base + data.len()).contains(&coeffs_at));
    }

    #[test]
    fn compiled_validation_rejects_structural_lies() {
        let compiled = CompiledPolySet::compile(&sample_polys());
        let good = encode_compiled(compiled.view());
        // Too few variables in the table.
        let art = artifact_with(section::COMPILED_ABS, good.clone());
        assert!(SharedCompiled::validate(&art, 1).is_err());
        // A zero exponent.
        let nm = compiled.num_monomials();
        let np = compiled.num_polys();
        let exps_at = 32 + nm * 8 + nm * 4 + np * 4 + compiled.num_factors() * 4;
        let mut bad = good.clone();
        bad[exps_at..exps_at + 4].copy_from_slice(&0u32.to_le_bytes());
        let art = artifact_with(section::COMPILED_ABS, bad);
        assert!(matches!(
            SharedCompiled::validate(&art, 64).unwrap_err(),
            PersistError::Malformed { .. }
        ));
        // Counts that disagree with the section length.
        let mut bad = good.clone();
        bad[0..8].copy_from_slice(&((np + 1) as u64).to_le_bytes());
        let art = artifact_with(section::COMPILED_ABS, bad);
        assert!(SharedCompiled::validate(&art, 64).is_err());
        // Missing section entirely.
        let art = artifact_with(section::VVS, good);
        assert!(matches!(
            SharedCompiled::validate(&art, 64).unwrap_err(),
            PersistError::MissingSection { .. }
        ));
    }

    #[test]
    fn empty_compiled_set_roundtrips() {
        let compiled = CompiledPolySet::<f64>::compile(&PolySet::new());
        let art = artifact_with(section::COMPILED_ABS, encode_compiled(compiled.view()));
        let shared = SharedCompiled::validate(&art, 0).expect("empty is valid");
        assert!(shared.view().is_empty());
        assert_eq!(
            shared.view().eval_one(&Valuation::neutral()),
            Vec::<f64>::new()
        );
    }

    #[test]
    fn working_set_roundtrips_lazily() {
        let polys = sample_polys();
        let mut ws = WorkingSet::from_polyset(&polys);
        // Rewrite so the arena holds a dead monomial too.
        ws.apply_group(&[VarId(1), VarId(3)], VarId(40), &[0, 1]);
        let art = artifact_with(section::WORKING_ABS, encode_working(&ws));
        let slot = WorkingSlot::validate(&art, section::WORKING_ABS, "working", 64)
            .expect("valid working set");
        assert_eq!(slot.num_polys(), ws.num_polys());
        assert_eq!(slot.arena_len(), ws.arena().len());
        let back = slot.decode();
        for (a, b) in back.to_polyset().iter().zip(ws.to_polyset().iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn working_validation_rejects_bad_ids_and_order() {
        let ws = WorkingSet::from_polyset(&sample_polys());
        let good = encode_working(&ws);
        // Variable outside the table.
        let art = artifact_with(section::WORKING_ABS, good.clone());
        assert!(WorkingSlot::validate(&art, section::WORKING_ABS, "working", 1).is_err());
        // Term id outside the arena: shrink the declared arena length.
        let mut bad = good.clone();
        bad[0..8].copy_from_slice(&1u64.to_le_bytes());
        let art = artifact_with(section::WORKING_ABS, bad);
        assert!(WorkingSlot::validate(&art, section::WORKING_ABS, "working", 64).is_err());
        // Trailing garbage.
        let mut bad = good;
        bad.extend_from_slice(&[0; 4]);
        let art = artifact_with(section::WORKING_ABS, bad);
        assert!(matches!(
            WorkingSlot::validate(&art, section::WORKING_ABS, "working", 64).unwrap_err(),
            PersistError::Malformed { .. }
        ));
    }
}
