//! Deterministic filesystem fault injection for the artifact writer.
//!
//! The atomic-save claim ("readers never observe a half-written
//! artifact") is only as good as its behaviour when the filesystem
//! misbehaves — which never happens on a healthy CI box. [`FaultFs`] is
//! the seam that makes it happen on demand: a counter-based plan that
//! fails the Nth `create`/`write`/`fsync`/`rename` the writer issues,
//! either persistently (the torn-write proofs: every injection point
//! must leave the previous artifact intact and surface a typed
//! [`PersistError`](super::PersistError)) or a bounded number of times
//! (the retry-path proofs: transient errors are retried with backoff
//! and the save still lands).
//!
//! Disabled injection ([`FaultFs::disabled`]) is a `None` check per
//! filesystem call — nothing is configured, nothing is counted. The
//! env-driven form (`PROVABS_FAULT_FS=<op>:<n>[:xT]`) exists so CI can
//! drive a whole process through an injection point without a special
//! binary; its absence is detected once per process.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// The filesystem operations
/// [`ArtifactWriter::write_atomic`](super::ArtifactWriter::write_atomic)
/// issues, in the order a save performs them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Creating the temporary sibling file.
    Create,
    /// Writing the artifact bytes into it.
    Write,
    /// `fsync`ing the temporary file before publishing.
    Sync,
    /// Renaming the temporary file over the target.
    Rename,
}

impl FaultOp {
    /// Every injection point, in save order — what the torn-write proof
    /// iterates over.
    pub const ALL: [FaultOp; 4] = [
        FaultOp::Create,
        FaultOp::Write,
        FaultOp::Sync,
        FaultOp::Rename,
    ];

    fn parse(s: &str) -> Option<FaultOp> {
        match s {
            "create" => Some(FaultOp::Create),
            "write" => Some(FaultOp::Write),
            "sync" | "fsync" => Some(FaultOp::Sync),
            "rename" => Some(FaultOp::Rename),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Plan {
    op: FaultOp,
    /// Matching operations observed so far (1-based after increment).
    seen: AtomicU32,
    /// The first matching operation to fail (1-based).
    first_fail: u32,
    /// How many consecutive matching operations fail from there
    /// (`None` = persistent: that one and every later one).
    fail_count: Option<u32>,
    transient: bool,
}

/// A deterministic fault-injection plan for the artifact writer.
///
/// Constructed per save (counters are consumed), threaded through
/// [`ArtifactWriter::write_atomic_with`](super::ArtifactWriter::write_atomic_with)
/// — or process-wide via the `PROVABS_FAULT_FS` environment variable,
/// which the plain `write_atomic` consults.
#[derive(Debug, Default)]
pub struct FaultFs {
    plan: Option<Plan>,
}

impl FaultFs {
    /// No injection: every check is a `None` test.
    pub fn disabled() -> Self {
        FaultFs::default()
    }

    /// Fails the `n`th matching operation (1-based) and every later
    /// one, with a non-transient error — the torn-write proof mode,
    /// where retries must exhaust and a typed error must surface.
    pub fn fail_nth(op: FaultOp, n: u32) -> Self {
        assert!(n >= 1, "operations are counted from 1");
        FaultFs {
            plan: Some(Plan {
                op,
                seen: AtomicU32::new(0),
                first_fail: n,
                fail_count: None,
                transient: false,
            }),
        }
    }

    /// Fails `times` matching operations starting at the `n`th, with a
    /// *transient* error (`ErrorKind::Interrupted`), then lets the rest
    /// succeed — the retry-path mode.
    pub fn fail_nth_times(op: FaultOp, n: u32, times: u32) -> Self {
        assert!(n >= 1, "operations are counted from 1");
        FaultFs {
            plan: Some(Plan {
                op,
                seen: AtomicU32::new(0),
                first_fail: n,
                fail_count: Some(times),
                transient: true,
            }),
        }
    }

    /// The process-wide plan from `PROVABS_FAULT_FS`
    /// (`<op>:<n>` persistent, `<op>:<n>:xT` transient for `T`
    /// failures; ops: `create`/`write`/`sync`/`rename`), or disabled
    /// when unset or unparseable. Absence is detected once per process.
    pub fn from_env() -> Self {
        static PRESENT: OnceLock<Option<String>> = OnceLock::new();
        let spec = PRESENT.get_or_init(|| std::env::var("PROVABS_FAULT_FS").ok());
        match spec {
            Some(spec) => Self::parse_spec(spec).unwrap_or_default(),
            None => FaultFs::disabled(),
        }
    }

    fn parse_spec(spec: &str) -> Option<Self> {
        let mut parts = spec.split(':');
        let op = FaultOp::parse(parts.next()?)?;
        let n: u32 = parts.next()?.parse().ok().filter(|&n| n >= 1)?;
        match parts.next() {
            None => Some(FaultFs::fail_nth(op, n)),
            Some(times) => {
                let times: u32 = times.strip_prefix('x')?.parse().ok()?;
                Some(FaultFs::fail_nth_times(op, n, times))
            }
        }
    }

    /// True when no plan is configured.
    pub fn is_disabled(&self) -> bool {
        self.plan.is_none()
    }

    /// Called by the writer before each filesystem operation: `Ok` to
    /// proceed, or the injected error.
    pub(crate) fn check(&self, op: FaultOp) -> std::io::Result<()> {
        let Some(plan) = &self.plan else {
            return Ok(());
        };
        if plan.op != op {
            return Ok(());
        }
        let nth = plan.seen.fetch_add(1, Ordering::Relaxed) + 1;
        let failing = match plan.fail_count {
            None => nth >= plan.first_fail,
            Some(count) => nth >= plan.first_fail && nth - plan.first_fail < count,
        };
        if failing {
            let kind = if plan.transient {
                std::io::ErrorKind::Interrupted
            } else {
                std::io::ErrorKind::Other
            };
            return Err(std::io::Error::new(
                kind,
                format!("injected fault: {op:?} #{nth}"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(fs: &FaultFs, op: FaultOp, n: usize) -> Vec<Option<std::io::ErrorKind>> {
        (0..n)
            .map(|_| fs.check(op).err().map(|e| e.kind()))
            .collect()
    }

    #[test]
    fn disabled_never_injects() {
        let fs = FaultFs::disabled();
        assert!(fs.is_disabled());
        assert_eq!(kinds(&fs, FaultOp::Write, 4), vec![None; 4]);
    }

    #[test]
    fn persistent_plan_fails_from_the_nth_onwards() {
        let fs = FaultFs::fail_nth(FaultOp::Sync, 2);
        // Other ops are untouched.
        assert!(fs.check(FaultOp::Write).is_ok());
        assert_eq!(
            kinds(&fs, FaultOp::Sync, 4),
            vec![
                None,
                Some(std::io::ErrorKind::Other),
                Some(std::io::ErrorKind::Other),
                Some(std::io::ErrorKind::Other),
            ]
        );
    }

    #[test]
    fn transient_plan_fails_a_bounded_window() {
        let fs = FaultFs::fail_nth_times(FaultOp::Rename, 1, 2);
        assert_eq!(
            kinds(&fs, FaultOp::Rename, 4),
            vec![
                Some(std::io::ErrorKind::Interrupted),
                Some(std::io::ErrorKind::Interrupted),
                None,
                None,
            ]
        );
    }

    #[test]
    fn env_spec_parsing() {
        assert!(FaultFs::parse_spec("write:1").is_some());
        assert!(FaultFs::parse_spec("fsync:3").is_some());
        assert!(FaultFs::parse_spec("rename:2:x5").is_some());
        assert!(FaultFs::parse_spec("chmod:1").is_none());
        assert!(FaultFs::parse_spec("write:0").is_none());
        assert!(FaultFs::parse_spec("write").is_none());
        assert!(FaultFs::parse_spec("write:1:5").is_none());
        let fs = FaultFs::parse_spec("write:2:x1").unwrap();
        assert_eq!(
            kinds(&fs, FaultOp::Write, 3),
            vec![None, Some(std::io::ErrorKind::Interrupted), None]
        );
    }
}
