//! Wire-level primitives of the artifact format: constants, the
//! word-folding checksum, and the little-endian encoder/decoder the
//! section codecs (here, in `provabs-trees::persist` and in
//! `provabs-session`) are written against.

use super::PersistError;

/// The artifact magic: the first eight bytes of every provabs artifact.
pub const MAGIC: [u8; 8] = *b"PVABSFMT";

/// The newest artifact format version this build reads and writes.
/// Readers reject anything newer with
/// [`PersistError::UnsupportedVersion`]; older versions would be
/// migrated here once one exists.
pub const FORMAT_VERSION: u32 = 1;

/// Well-known section ids of the session artifact layout.
///
/// The container itself is agnostic — sections are `(id, bytes)` pairs —
/// but every layer agrees on these ids so the artifact stays one file
/// with one table of contents (see ADR 006 for why not per-crate files).
pub mod section {
    /// Session configuration: strategy, bound, provenance origin, sizes.
    pub const SESSION_META: u32 = 1;
    /// The interned variable table, in id order.
    pub const VAR_TABLE: u32 = 2;
    /// The abstraction forest as configured on the session.
    pub const FOREST_CONFIG: u32 = 3;
    /// The cleaned forest the chosen VVS refers to.
    pub const FOREST_CLEAN: u32 = 4;
    /// The chosen valid variable set (per-tree node cuts).
    pub const VVS: u32 = 5;
    /// The variables live in the abstracted provenance (sorted ids).
    pub const LIVE_VARS: u32 = 6;
    /// The frozen compiled columns of `𝒫↓S` — the zero-copy payload.
    pub const COMPILED_ABS: u32 = 7;
    /// The abstracted working set (arena + terms), decoded lazily.
    pub const WORKING_ABS: u32 = 8;
    /// The original working set (arena + terms), decoded lazily.
    pub const WORKING_ORIG: u32 = 9;
}

/// A fast 64-bit word-folding checksum (fxhash-style multiply-rotate
/// over `u64` chunks, length-seeded).
///
/// This is an *integrity* check against truncation and bit rot, not a
/// cryptographic MAC — an adversary who can rewrite payloads can rewrite
/// checksums too (which is why the decoders validate structure
/// independently of the checksums). Chosen over a byte-wise FNV because
/// the µs-scale warm-open budget cannot afford byte-at-a-time hashing of
/// multi-megabyte sections.
pub fn checksum64(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ (bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("chunks_exact yields 8"));
        h = (h ^ w).rotate_left(5).wrapping_mul(SEED);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail))
            .rotate_left(5)
            .wrapping_mul(SEED);
    }
    h
}

/// A little-endian section encoder: an append-only byte buffer with
/// fixed-width writes. Section payloads are assembled with this and
/// handed to [`ArtifactWriter::section`](super::ArtifactWriter::section).
#[derive(Default, Debug)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian —
    /// exact round-trip of every value including NaN payloads.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends a whole `u32` slice, little-endian.
    pub fn u32s(&mut self, vs: &[u32]) {
        for &v in vs {
            self.u32(v);
        }
    }

    /// Zero-pads to the next 8-byte boundary (within-section alignment;
    /// the container separately 8-aligns each section's start).
    pub fn align8(&mut self) {
        let target = self.buf.len().next_multiple_of(8);
        self.buf.resize(target, 0);
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder into its payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A little-endian section decoder: a bounds-checked cursor over a
/// payload. Every read returns [`PersistError::Truncated`] instead of
/// panicking when the bytes run out — the uniform failure mode the
/// corruption battery leans on.
#[derive(Clone, Copy, Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
    context: &'static str,
}

impl<'a> Dec<'a> {
    /// A decoder over `bytes`, reporting truncation against `context`
    /// (the section name).
    pub fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Self {
            bytes,
            at: 0,
            context,
        }
    }

    /// The section name errors are reported against.
    pub fn context(&self) -> &'static str {
        self.context
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                context: self.context,
            });
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("take(4) yields 4"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("take(8) yields 8"),
        ))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u64` and checks it fits a `usize` count bounded by
    /// `limit` — the guard against oversized length fields walking the
    /// cursor (or a later allocation) out of bounds.
    pub fn count(&mut self, what: &'static str, limit: usize) -> Result<usize, PersistError> {
        let raw = self.u64()?;
        let n = usize::try_from(raw).map_err(|_| {
            PersistError::malformed(self.context, format!("{what} overflows usize"))
        })?;
        if n > limit {
            return Err(PersistError::malformed(
                self.context,
                format!("{what} = {n} exceeds the plausible bound {limit}"),
            ));
        }
        Ok(n)
    }

    /// Asserts the payload was consumed exactly (no trailing garbage).
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::malformed(
                self.context,
                format!("{} trailing bytes", self.remaining()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enc_dec_roundtrip() {
        let mut e = Enc::new();
        e.u32(7);
        e.u64(u64::MAX - 1);
        e.f64(-0.0);
        e.f64(f64::NAN);
        e.u32s(&[1, 2, 3]);
        e.align8();
        let bytes = e.finish();
        assert_eq!(bytes.len() % 8, 0);
        let mut d = Dec::new(&bytes, "test");
        assert_eq!(d.u32().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.u32().unwrap(), 1);
        assert_eq!(d.u32().unwrap(), 2);
        assert_eq!(d.u32().unwrap(), 3);
        d.take(d.remaining()).unwrap();
        d.finish().unwrap();
    }

    #[test]
    fn dec_reports_truncation_and_trailing_bytes() {
        let mut d = Dec::new(&[1, 2, 3], "tiny");
        assert_eq!(
            d.u32().unwrap_err(),
            PersistError::Truncated { context: "tiny" }
        );
        let d = Dec::new(&[0; 4], "trail");
        assert!(matches!(
            d.finish().unwrap_err(),
            PersistError::Malformed {
                context: "trail",
                ..
            }
        ));
    }

    #[test]
    fn count_rejects_oversized_length_fields() {
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes, "sec");
        assert!(matches!(
            d.count("things", 1024).unwrap_err(),
            PersistError::Malformed { .. }
        ));
        let mut e = Enc::new();
        e.u64(10);
        let bytes = e.finish();
        let mut d = Dec::new(&bytes, "sec");
        assert_eq!(d.count("things", 1024).unwrap(), 10);
        let mut d2 = Dec::new(&bytes, "sec");
        assert!(d2.count("things", 9).is_err());
    }
}
