//! The artifact container: assembling section payloads into one
//! checksummed file, and validating + indexing one back out of owned or
//! memory-mapped bytes.

use super::fault::{FaultFs, FaultOp};
use super::format::{checksum64, FORMAT_VERSION, MAGIC};
use super::PersistError;
use std::fs::File;
use std::io::{Read, Write};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Attempts [`ArtifactWriter::write_atomic`] makes before giving up on
/// transient I/O errors (`Interrupted` / `WouldBlock` / `TimedOut`).
const WRITE_ATTEMPTS: u32 = 3;
/// Backoff before retry attempt `i` (doubles each time).
const WRITE_BACKOFF: Duration = Duration::from_millis(1);

/// Header: magic (8) + version + flags + section_count + reserved (4 × 4).
const HEADER_LEN: usize = 24;
/// TOC entry: id + reserved (2 × 4) + offset + len + checksum (3 × 8).
const TOC_ENTRY_LEN: usize = 32;
/// Anything beyond this many sections is a corrupt count, not a real
/// artifact (the session layout uses nine).
const MAX_SECTIONS: usize = 4096;

/// The backing bytes of an opened artifact — owned or mapped, both with
/// an 8-byte-aligned base pointer (a `u64`-backed buffer, or a page).
pub(crate) enum ArtifactBytes {
    /// The file copied into a `Vec<u64>` so the base is 8-aligned.
    Owned { words: Vec<u64>, len: usize },
    /// A read-only private mapping of the file.
    Mapped(memmap2::Mmap),
}

impl std::fmt::Debug for ArtifactBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactBytes::Owned { len, .. } => f.debug_struct("Owned").field("len", len).finish(),
            ArtifactBytes::Mapped(m) => f.debug_struct("Mapped").field("len", &m.len()).finish(),
        }
    }
}

impl ArtifactBytes {
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            ArtifactBytes::Owned { words, len } => {
                // SAFETY: the Vec owns `words.len() * 8 >= *len`
                // initialised bytes and u8 has no validity invariants.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
            ArtifactBytes::Mapped(m) => m.as_slice(),
        }
    }

    fn from_vec(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec owns `words.len() * 8 >= len` writable bytes.
        let dst = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        dst.copy_from_slice(&bytes);
        ArtifactBytes::Owned { words, len }
    }
}

/// Assembles `(id, payload)` sections into one artifact file: header,
/// table of contents with per-section checksums, 8-aligned payloads.
///
/// Writes are atomic: [`write_atomic`](Self::write_atomic) writes a
/// temporary sibling and renames it over the target, so readers (and
/// concurrent mappers) never observe a half-written artifact.
#[derive(Default, Debug)]
pub struct ArtifactWriter {
    sections: Vec<(u32, Vec<u8>)>,
}

impl ArtifactWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a section. Ids must be unique; order is preserved.
    pub fn section(&mut self, id: u32, payload: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|(i, _)| *i != id),
            "duplicate section id {id}"
        );
        self.sections.push((id, payload));
    }

    /// Serialises the whole artifact into bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let toc_end = HEADER_LEN + self.sections.len() * TOC_ENTRY_LEN;
        let payload_start = (toc_end + 8).next_multiple_of(8);
        // Lay the payloads out first so the TOC can carry real offsets.
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut at = payload_start;
        for (_, payload) in &self.sections {
            offsets.push(at);
            at = (at + payload.len()).next_multiple_of(8);
        }
        let total = at;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // flags
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        for ((id, payload), offset) in self.sections.iter().zip(&offsets) {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // reserved
            out.extend_from_slice(&(*offset as u64).to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&checksum64(payload).to_le_bytes());
        }
        let header_sum = checksum64(&out);
        out.extend_from_slice(&header_sum.to_le_bytes());
        out.resize(payload_start, 0);
        for ((_, payload), offset) in self.sections.iter().zip(&offsets) {
            debug_assert_eq!(out.len(), *offset);
            out.extend_from_slice(payload);
            out.resize(out.len().next_multiple_of(8), 0);
        }
        debug_assert_eq!(out.len(), total);
        out
    }

    /// Writes the artifact to `path` via a temporary sibling file and an
    /// atomic rename, honouring a `PROVABS_FAULT_FS` injection plan when
    /// one is set (see [`FaultFs::from_env`]).
    pub fn write_atomic(&self, path: &Path) -> Result<(), PersistError> {
        self.write_atomic_with(path, &FaultFs::from_env())
    }

    /// [`write_atomic`](Self::write_atomic) through an explicit
    /// fault-injection plan — the seam the torn-write and retry proofs
    /// drive.
    ///
    /// The invariant either way: the target path only ever holds the
    /// complete previous artifact or the complete new one. The new
    /// bytes are staged in a temporary sibling, fsynced, then renamed
    /// over the target; any failure before the rename leaves the target
    /// untouched (and removes the staging file), and a failed rename
    /// cannot tear — POSIX `rename(2)` replaces atomically or not at
    /// all. Transient errors (`Interrupted`/`WouldBlock`/`TimedOut`)
    /// are retried up to three times with doubling
    /// backoff; anything else (or exhausted retries) surfaces as
    /// [`PersistError::Io`].
    pub fn write_atomic_with(&self, path: &Path, faults: &FaultFs) -> Result<(), PersistError> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let mut attempt = 0;
        loop {
            match Self::try_publish(&bytes, &tmp, path, faults) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let _ = std::fs::remove_file(&tmp);
                    attempt += 1;
                    let transient = matches!(
                        e.kind(),
                        std::io::ErrorKind::Interrupted
                            | std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                    );
                    if !transient || attempt >= WRITE_ATTEMPTS {
                        return Err(PersistError::io(e));
                    }
                    std::thread::sleep(WRITE_BACKOFF * (1 << (attempt - 1)));
                }
            }
        }
    }

    /// One staged-write-and-rename attempt, with every filesystem call
    /// routed through the injection seam first.
    fn try_publish(bytes: &[u8], tmp: &Path, path: &Path, faults: &FaultFs) -> std::io::Result<()> {
        faults.check(FaultOp::Create)?;
        let mut f = File::create(tmp)?;
        faults.check(FaultOp::Write)?;
        f.write_all(bytes)?;
        faults.check(FaultOp::Sync)?;
        f.sync_all()?;
        drop(f);
        faults.check(FaultOp::Rename)?;
        std::fs::rename(tmp, path)
    }
}

/// A validated, indexed artifact: bytes (owned or mapped) plus the
/// parsed table of contents.
///
/// Construction is the validation boundary: magic, version, host
/// endianness, TOC bounds/alignment and every checksum are verified
/// before `open` returns, so [`section`](Self::section) lookups and all
/// downstream reslicing are infallible.
pub struct RawArtifact {
    bytes: Arc<ArtifactBytes>,
    sections: Vec<(u32, Range<usize>)>,
    version: u32,
    mapped: bool,
}

impl std::fmt::Debug for RawArtifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RawArtifact")
            .field("version", &self.version)
            .field("mapped", &self.mapped)
            .field("sections", &self.sections.len())
            .field("len", &self.bytes.as_slice().len())
            .finish()
    }
}

impl RawArtifact {
    /// Opens an artifact by reading the whole file into an aligned owned
    /// buffer — the simple load path.
    pub fn open(path: &Path) -> Result<Self, PersistError> {
        let mut f = File::open(path).map_err(PersistError::io)?;
        let len = f.metadata().map_err(PersistError::io)?.len();
        let len = usize::try_from(len)
            .map_err(|_| PersistError::malformed("file", "file too large for this host"))?;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec owns `words.len() * 8 >= len` writable bytes.
        let dst = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        f.read_exact(dst).map_err(PersistError::io)?;
        Self::parse(Arc::new(ArtifactBytes::Owned { words, len }), false)
    }

    /// Opens an artifact by memory-mapping the file read-only — the
    /// zero-copy load path: validated sections are resliced straight
    /// from the page cache, so a warm open touches only the pages it
    /// validates and later evaluates.
    ///
    /// The caller must not truncate or rewrite the file in place while
    /// the artifact (or anything borrowing from it) is alive —
    /// republishing via [`ArtifactWriter::write_atomic`]'s rename leaves
    /// live mappings of the old inode intact and is always safe.
    pub fn open_mapped(path: &Path) -> Result<Self, PersistError> {
        let f = File::open(path).map_err(PersistError::io)?;
        // SAFETY: see the doc contract above — artifacts are published
        // by atomic rename, never mutated in place.
        let map = unsafe { memmap2::Mmap::map(&f) }.map_err(PersistError::io)?;
        Self::parse(Arc::new(ArtifactBytes::Mapped(map)), true)
    }

    /// Opens an artifact from in-memory bytes (copied into an aligned
    /// buffer) — how the corruption battery feeds mutated artifacts
    /// through the full validation path without touching disk.
    pub fn open_bytes(bytes: Vec<u8>) -> Result<Self, PersistError> {
        Self::parse(Arc::new(ArtifactBytes::from_vec(bytes)), false)
    }

    fn parse(bytes: Arc<ArtifactBytes>, mapped: bool) -> Result<Self, PersistError> {
        #[cfg(target_endian = "big")]
        {
            return Err(PersistError::UnsupportedHost);
        }
        #[cfg(target_endian = "little")]
        {
            let data = bytes.as_slice();
            if data.len() < HEADER_LEN + 8 {
                return Err(PersistError::Truncated { context: "header" });
            }
            if data[..8] != MAGIC {
                return Err(PersistError::BadMagic);
            }
            let rd_u32 =
                |at: usize| u32::from_le_bytes(data[at..at + 4].try_into().expect("in bounds"));
            let rd_u64 =
                |at: usize| u64::from_le_bytes(data[at..at + 8].try_into().expect("in bounds"));
            let version = rd_u32(8);
            if version > FORMAT_VERSION {
                return Err(PersistError::UnsupportedVersion {
                    found: version,
                    supported: FORMAT_VERSION,
                });
            }
            let section_count = rd_u32(16) as usize;
            if section_count > MAX_SECTIONS {
                return Err(PersistError::malformed(
                    "header",
                    format!("section count {section_count} exceeds {MAX_SECTIONS}"),
                ));
            }
            let toc_end = HEADER_LEN + section_count * TOC_ENTRY_LEN;
            if data.len() < toc_end + 8 {
                return Err(PersistError::Truncated { context: "TOC" });
            }
            let stored_header_sum = rd_u64(toc_end);
            if checksum64(&data[..toc_end]) != stored_header_sum {
                return Err(PersistError::ChecksumMismatch { context: "header" });
            }
            let payload_start = (toc_end + 8).next_multiple_of(8);
            let mut sections: Vec<(u32, Range<usize>)> = Vec::with_capacity(section_count);
            for i in 0..section_count {
                let at = HEADER_LEN + i * TOC_ENTRY_LEN;
                let id = rd_u32(at);
                let offset = rd_u64(at + 8);
                let len = rd_u64(at + 16);
                let stored_sum = rd_u64(at + 24);
                let offset = usize::try_from(offset).map_err(|_| {
                    PersistError::malformed("TOC", format!("section {id} offset overflows"))
                })?;
                let len = usize::try_from(len).map_err(|_| {
                    PersistError::malformed("TOC", format!("section {id} length overflows"))
                })?;
                if offset % 8 != 0 {
                    return Err(PersistError::Misaligned { context: "section" });
                }
                let end = offset.checked_add(len).ok_or_else(|| {
                    PersistError::malformed("TOC", format!("section {id} range overflows"))
                })?;
                if offset < payload_start || end > data.len() {
                    return Err(PersistError::malformed(
                        "TOC",
                        format!("section {id} range {offset}..{end} outside the file"),
                    ));
                }
                if sections.iter().any(|(other, _)| *other == id) {
                    return Err(PersistError::malformed(
                        "TOC",
                        format!("duplicate section id {id}"),
                    ));
                }
                if checksum64(&data[offset..end]) != stored_sum {
                    return Err(PersistError::ChecksumMismatch { context: "section" });
                }
                sections.push((id, offset..end));
            }
            // The checksums cannot cover inter-section padding, so the
            // file length is pinned down exactly instead: the writer's
            // layout is deterministic, and any trailing truncation or
            // appended garbage is rejected here.
            let expected_len = sections
                .iter()
                .map(|(_, r)| r.end.next_multiple_of(8))
                .max()
                .unwrap_or(payload_start)
                .max(payload_start);
            if data.len() != expected_len {
                return Err(PersistError::malformed(
                    "file",
                    format!(
                        "file length {} does not match the TOC's layout ({expected_len})",
                        data.len()
                    ),
                ));
            }
            Ok(Self {
                bytes,
                sections,
                version,
                mapped,
            })
        }
    }

    /// The format version the artifact declares.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Whether this artifact is served from a memory mapping (the
    /// zero-copy path) rather than an owned buffer.
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }

    /// The ids present, in file order.
    pub fn section_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.sections.iter().map(|(id, _)| *id)
    }

    /// A section's payload, if present.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        self.section_range(id).map(|r| &self.bytes.as_slice()[r])
    }

    /// A required section's payload, as a typed error when absent.
    pub fn require(&self, id: u32, name: &'static str) -> Result<&[u8], PersistError> {
        self.section(id)
            .ok_or(PersistError::MissingSection { name })
    }

    pub(crate) fn section_range(&self, id: u32) -> Option<Range<usize>> {
        self.sections
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, r)| r.clone())
    }

    pub(crate) fn bytes_arc(&self) -> &Arc<ArtifactBytes> {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = ArtifactWriter::new();
        w.section(7, vec![1, 2, 3, 4, 5]);
        w.section(9, (0..64u8).collect());
        w.section(3, Vec::new());
        w.to_bytes()
    }

    #[test]
    fn roundtrip_preserves_sections() {
        let art = RawArtifact::open_bytes(sample()).expect("valid artifact");
        assert_eq!(art.version(), FORMAT_VERSION);
        assert!(!art.is_mapped());
        assert_eq!(art.section_ids().collect::<Vec<_>>(), vec![7, 9, 3]);
        assert_eq!(art.section(7).unwrap(), &[1, 2, 3, 4, 5]);
        assert_eq!(art.section(9).unwrap().len(), 64);
        assert_eq!(art.section(3).unwrap(), &[] as &[u8]);
        assert!(art.section(42).is_none());
        assert!(matches!(
            art.require(42, "ghost").unwrap_err(),
            PersistError::MissingSection { name: "ghost" }
        ));
        // Every section payload is 8-aligned in the file image.
        for id in [7, 9, 3] {
            let r = art.section_range(id).unwrap();
            assert_eq!(r.start % 8, 0);
        }
    }

    #[test]
    fn atomic_write_then_open_both_paths() {
        let mut path = std::env::temp_dir();
        path.push(format!("provabs-artifact-test-{}.bin", std::process::id()));
        let mut w = ArtifactWriter::new();
        w.section(1, vec![0xAB; 40]);
        w.write_atomic(&path).expect("write");
        for art in [
            RawArtifact::open(&path).expect("owned open"),
            RawArtifact::open_mapped(&path).expect("mapped open"),
        ] {
            assert_eq!(art.section(1).unwrap(), &[0xAB; 40][..]);
        }
        assert!(RawArtifact::open_mapped(&path).expect("mapped").is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_future_version() {
        let good = sample();
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            RawArtifact::open_bytes(bad).unwrap_err(),
            PersistError::BadMagic
        );
        let mut future = good.clone();
        future[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        // The tampered version also breaks the header checksum; recompute
        // it so the version check itself is exercised.
        let toc_end = HEADER_LEN + 3 * TOC_ENTRY_LEN;
        let sum = checksum64(&future[..toc_end]);
        future[toc_end..toc_end + 8].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            RawArtifact::open_bytes(future).unwrap_err(),
            PersistError::UnsupportedVersion {
                found: FORMAT_VERSION + 1,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let good = sample();
        for len in 0..good.len() {
            let err = RawArtifact::open_bytes(good[..len].to_vec())
                .expect_err("truncated artifact must not open");
            // Any typed error is acceptable; no panic, no success.
            let _ = format!("{err}");
        }
    }

    #[test]
    fn rejects_payload_and_header_flips() {
        let good = sample();
        for at in 0..good.len() {
            let mut bad = good.clone();
            bad[at] ^= 0x01;
            if let Err(e) = RawArtifact::open_bytes(bad) {
                let _ = format!("{e}");
            } else {
                // The only byte a flip may go unnoticed in is inter-
                // section padding (not covered by any checksum).
                let art = RawArtifact::open_bytes(good.clone()).unwrap();
                let in_padding = !(0..HEADER_LEN + 3 * TOC_ENTRY_LEN + 8).contains(&at)
                    && ![7u32, 9, 3].iter().any(|&id| {
                        let r = art.section_range(id).unwrap();
                        r.contains(&at)
                    });
                assert!(in_padding, "undetected flip at {at}");
            }
        }
    }

    #[test]
    fn rejects_oversized_length_fields() {
        let good = sample();
        // Grow section 7's TOC length beyond the file, fixing the header
        // checksum so only the bounds check can catch it.
        let mut bad = good.clone();
        let entry = HEADER_LEN; // first TOC entry (id 7)
        bad[entry + 16..entry + 24].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let toc_end = HEADER_LEN + 3 * TOC_ENTRY_LEN;
        let sum = checksum64(&bad[..toc_end]);
        bad[toc_end..toc_end + 8].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            RawArtifact::open_bytes(bad).unwrap_err(),
            PersistError::Malformed { context: "TOC", .. }
        ));
    }
}
