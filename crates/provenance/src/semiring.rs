//! Commutative semirings and polynomial specialisation.
//!
//! In the semiring model (§2.1, case 1), SPJU query results over
//! variable-annotated tuples carry polynomials in `N[X]` — the *free*
//! commutative semiring. Green's observation (the paper's `[35]`) is that
//! `N[X]` is universal: evaluating a provenance polynomial under a
//! valuation into any commutative semiring recovers the annotation the
//! query would have computed directly in that semiring. [`specialize`]
//! implements that unique homomorphism, and the unit tests check the
//! commutation property against a hand-rolled evaluation.

use crate::polynomial::Polynomial;
use crate::var::VarId;
use std::fmt;

/// A commutative semiring `(K, ⊕, ⊗, 0, 1)`.
pub trait Semiring: Clone + PartialEq + fmt::Debug {
    /// Additive identity; annihilates under `times`.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Commutative, associative addition.
    fn plus(&self, other: &Self) -> Self;
    /// Commutative, associative multiplication distributing over `plus`.
    fn times(&self, other: &Self) -> Self;

    /// `self ⊗ … ⊗ self`, `exp` times (`one()` when `exp == 0`).
    fn pow(&self, exp: u32) -> Self {
        let mut acc = Self::one();
        for _ in 0..exp {
            acc = acc.times(self);
        }
        acc
    }

    /// `n · self = self ⊕ … ⊕ self`, `n` times (`zero()` when `n == 0`).
    fn nat_scale(&self, n: u64) -> Self {
        let mut acc = Self::zero();
        for _ in 0..n {
            acc = acc.plus(self);
        }
        acc
    }
}

/// The Boolean semiring `({false,true}, ∨, ∧)`: tuple existence under
/// hypothetical deletions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Bool(pub bool);

impl Semiring for Bool {
    fn zero() -> Self {
        Bool(false)
    }
    fn one() -> Self {
        Bool(true)
    }
    fn plus(&self, other: &Self) -> Self {
        Bool(self.0 || other.0)
    }
    fn times(&self, other: &Self) -> Self {
        Bool(self.0 && other.0)
    }
    fn pow(&self, exp: u32) -> Self {
        if exp == 0 {
            Bool(true)
        } else {
            *self
        }
    }
    fn nat_scale(&self, n: u64) -> Self {
        if n == 0 {
            Bool(false)
        } else {
            *self
        }
    }
}

/// The counting semiring `(ℕ, +, ×)`: bag multiplicity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Count(pub u64);

impl Semiring for Count {
    fn zero() -> Self {
        Count(0)
    }
    fn one() -> Self {
        Count(1)
    }
    fn plus(&self, other: &Self) -> Self {
        Count(self.0 + other.0)
    }
    fn times(&self, other: &Self) -> Self {
        Count(self.0 * other.0)
    }
    fn nat_scale(&self, n: u64) -> Self {
        Count(self.0 * n)
    }
}

/// The tropical (min, +) semiring: cheapest-derivation cost.
/// `zero` is `+∞`, `one` is `0`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Tropical(pub f64);

impl Semiring for Tropical {
    fn zero() -> Self {
        Tropical(f64::INFINITY)
    }
    fn one() -> Self {
        Tropical(0.0)
    }
    fn plus(&self, other: &Self) -> Self {
        Tropical(self.0.min(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        Tropical(self.0 + other.0)
    }
    fn pow(&self, exp: u32) -> Self {
        Tropical(self.0 * f64::from(exp))
    }
    fn nat_scale(&self, n: u64) -> Self {
        if n == 0 {
            Self::zero()
        } else {
            *self
        }
    }
}

/// The Viterbi / fuzzy semiring `([0,1], max, min)`: trust or confidence.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Fuzzy(pub f64);

impl Semiring for Fuzzy {
    fn zero() -> Self {
        Fuzzy(0.0)
    }
    fn one() -> Self {
        Fuzzy(1.0)
    }
    fn plus(&self, other: &Self) -> Self {
        Fuzzy(self.0.max(other.0))
    }
    fn times(&self, other: &Self) -> Self {
        Fuzzy(self.0.min(other.0))
    }
    fn pow(&self, exp: u32) -> Self {
        if exp == 0 {
            Self::one()
        } else {
            *self
        }
    }
    fn nat_scale(&self, n: u64) -> Self {
        if n == 0 {
            Self::zero()
        } else {
            *self
        }
    }
}

/// Real numbers under ordinary `(+, ×)` — the semiring used when
/// hypotheticals scale aggregate contributions.
impl Semiring for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn plus(&self, other: &Self) -> Self {
        self + other
    }
    fn times(&self, other: &Self) -> Self {
        self * other
    }
    fn pow(&self, exp: u32) -> Self {
        f64::powi(*self, exp as i32)
    }
    fn nat_scale(&self, n: u64) -> Self {
        self * n as f64
    }
}

/// `K[X]` — the commutative semiring of provenance polynomials over any
/// coefficient ring. With `C = u64` this is `N[X]`, the *free* semiring
/// of the paper; `C = f64` is the counting/aggregation instance the
/// engine and the `provabs_session` façade work over.
impl<C: crate::coeff::Coefficient> Semiring for Polynomial<C> {
    fn zero() -> Self {
        Polynomial::zero()
    }
    fn one() -> Self {
        Polynomial::constant(C::one())
    }
    fn plus(&self, other: &Self) -> Self {
        self.add(other)
    }
    fn times(&self, other: &Self) -> Self {
        self.mul(other)
    }
}

/// Specialises a provenance polynomial `p ∈ N[X]` into the semiring `S`
/// through the valuation `val` — the unique semiring homomorphism fixing
/// `val` (Green \[35\]; this is what makes abstraction applicable across
/// provenance applications, §5).
pub fn specialize<S: Semiring>(p: &Polynomial<u64>, mut val: impl FnMut(VarId) -> S) -> S {
    let mut acc = S::zero();
    for (m, &c) in p.iter() {
        let mut term = S::one();
        for (v, e) in m.factors() {
            term = term.times(&val(v).pow(e));
        }
        acc = acc.plus(&term.nat_scale(c));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    /// 2·x·y + z²  — a small N[X] polynomial used across the tests.
    fn sample() -> Polynomial<u64> {
        Polynomial::from_terms([
            (Monomial::from_vars([v(1), v(2)]), 2u64),
            (Monomial::from_factors([(v(3), 2)]), 1u64),
        ])
    }

    #[test]
    fn boolean_specialisation_is_existence() {
        // x present, y present, z absent: 2xy + z² → true∧true ∨ false = true.
        let p = sample();
        let r = specialize(&p, |x| Bool(x != v(3)));
        assert_eq!(r, Bool(true));
        // Deleting y kills the first monomial; z still absent → false.
        let r2 = specialize(&p, |x| Bool(x == v(1)));
        assert_eq!(r2, Bool(false));
    }

    #[test]
    fn counting_specialisation_multiplies_multiplicities() {
        // x=2, y=3, z=4 → 2·(2·3) + 4² = 28.
        let p = sample();
        let r = specialize(&p, |x| {
            Count(match x {
                VarId(1) => 2,
                VarId(2) => 3,
                _ => 4,
            })
        });
        assert_eq!(r, Count(28));
    }

    #[test]
    fn tropical_specialisation_takes_cheapest_derivation() {
        // cost(x)=1, cost(y)=2, cost(z)=5 → min(1+2, 2·5) with coefficient 2
        // irrelevant for min → 3.
        let p = sample();
        let r = specialize(&p, |x| {
            Tropical(match x {
                VarId(1) => 1.0,
                VarId(2) => 2.0,
                _ => 5.0,
            })
        });
        assert_eq!(r, Tropical(3.0));
    }

    #[test]
    fn fuzzy_specialisation() {
        let p = sample();
        let r = specialize(&p, |x| {
            Fuzzy(match x {
                VarId(1) => 0.9,
                VarId(2) => 0.5,
                _ => 0.7,
            })
        });
        // max(min(0.9, 0.5), 0.7) = 0.7
        assert_eq!(r, Fuzzy(0.7));
    }

    #[test]
    fn specialisation_into_nx_is_identity() {
        let p = sample();
        let r: Polynomial<u64> = specialize(&p, Polynomial::variable);
        assert_eq!(r, p);
    }

    #[test]
    fn homomorphism_commutes_with_plus_and_times() {
        // specialize(p ⊕ q) == specialize(p) ⊕ specialize(q), same for ⊗.
        let p = sample();
        let q = Polynomial::from_terms([(Monomial::var(v(1)), 3u64)]);
        let val = |x: VarId| Count(u64::from(x.0) + 1);
        let lhs_plus = specialize(&p.plus(&q), val);
        let rhs_plus = specialize(&p, val).plus(&specialize(&q, val));
        assert_eq!(lhs_plus, rhs_plus);
        let lhs_times = specialize(&p.times(&q), val);
        let rhs_times = specialize(&p, val).times(&specialize(&q, val));
        assert_eq!(lhs_times, rhs_times);
    }

    #[test]
    fn tropical_identities() {
        let a = Tropical(3.0);
        assert_eq!(a.plus(&Tropical::zero()), a);
        assert_eq!(a.times(&Tropical::one()), a);
        assert_eq!(a.times(&Tropical::zero()), Tropical::zero());
    }

    #[test]
    fn bool_pow_and_scale_edge_cases() {
        assert_eq!(Bool(false).pow(0), Bool(true));
        assert_eq!(Bool(true).nat_scale(0), Bool(false));
    }
}
