//! Provenance circuits: shared-DAG arithmetic expressions.
//!
//! Query plans naturally produce provenance with shared sub-derivations
//! (the same joined tuple feeds many outputs). Materialising a polynomial
//! per output duplicates that work exponentially in the worst case, so the
//! engine builds *circuits* — `Arc`-shared DAGs of sums and products — and
//! flattens or evaluates them on demand with pointer-identity memoisation
//! (each shared node is expanded exactly once).

use crate::coeff::Coefficient;
use crate::fxhash::FxHashMap;
use crate::polynomial::Polynomial;
use crate::var::VarId;
use std::sync::Arc;

/// A node of a provenance circuit.
#[derive(Debug)]
pub enum Node<C> {
    /// A provenance variable.
    Var(VarId),
    /// A constant coefficient.
    Const(C),
    /// Sum of the children.
    Sum(Vec<Circuit<C>>),
    /// Product of the children.
    Prod(Vec<Circuit<C>>),
}

/// A handle to a (possibly shared) circuit node.
#[derive(Debug)]
pub struct Circuit<C>(Arc<Node<C>>);

impl<C> Clone for Circuit<C> {
    fn clone(&self) -> Self {
        Circuit(Arc::clone(&self.0))
    }
}

impl<C: Coefficient> Circuit<C> {
    /// A variable leaf.
    pub fn var(v: VarId) -> Self {
        Circuit(Arc::new(Node::Var(v)))
    }

    /// A constant leaf.
    pub fn constant(c: C) -> Self {
        Circuit(Arc::new(Node::Const(c)))
    }

    /// The constant one.
    pub fn one() -> Self {
        Self::constant(C::one())
    }

    /// The constant zero.
    pub fn zero() -> Self {
        Self::constant(C::zero())
    }

    /// Sum node over `children` (flattens the trivial cases).
    pub fn sum(children: Vec<Circuit<C>>) -> Self {
        match children.len() {
            0 => Self::zero(),
            1 => children.into_iter().next().expect("len checked"),
            _ => Circuit(Arc::new(Node::Sum(children))),
        }
    }

    /// Product node over `children` (flattens the trivial cases).
    pub fn prod(children: Vec<Circuit<C>>) -> Self {
        match children.len() {
            0 => Self::one(),
            1 => children.into_iter().next().expect("len checked"),
            _ => Circuit(Arc::new(Node::Prod(children))),
        }
    }

    /// The underlying node.
    pub fn node(&self) -> &Node<C> {
        &self.0
    }

    fn key(&self) -> usize {
        Arc::as_ptr(&self.0) as usize
    }

    /// Number of *distinct* DAG nodes reachable from this handle (shared
    /// nodes counted once).
    pub fn dag_size(&self) -> usize {
        fn walk<C: Coefficient>(c: &Circuit<C>, seen: &mut FxHashMap<usize, ()>) -> usize {
            if seen.insert(c.key(), ()).is_some() {
                return 0;
            }
            1 + match c.node() {
                Node::Var(_) | Node::Const(_) => 0,
                Node::Sum(ch) | Node::Prod(ch) => ch.iter().map(|c| walk(c, seen)).sum(),
            }
        }
        walk(self, &mut FxHashMap::default())
    }

    /// Number of nodes of the fully unshared *tree* expansion — the size a
    /// naive representation would need. Together with [`Self::dag_size`]
    /// this quantifies sharing.
    pub fn tree_size(&self) -> u64 {
        let mut memo: FxHashMap<usize, u64> = FxHashMap::default();
        fn walk<C: Coefficient>(c: &Circuit<C>, memo: &mut FxHashMap<usize, u64>) -> u64 {
            if let Some(&n) = memo.get(&c.key()) {
                return n;
            }
            let n = 1 + match c.node() {
                Node::Var(_) | Node::Const(_) => 0,
                Node::Sum(ch) | Node::Prod(ch) => ch.iter().map(|c| walk(c, memo)).sum::<u64>(),
            };
            memo.insert(c.key(), n);
            n
        }
        walk(self, &mut memo)
    }

    /// Evaluates the circuit under a valuation, visiting each shared node
    /// once.
    pub fn eval(&self, mut val: impl FnMut(VarId) -> C) -> C {
        let mut memo: FxHashMap<usize, C> = FxHashMap::default();
        self.eval_memo(&mut val, &mut memo)
    }

    fn eval_memo(&self, val: &mut impl FnMut(VarId) -> C, memo: &mut FxHashMap<usize, C>) -> C {
        if let Some(v) = memo.get(&self.key()) {
            return v.clone();
        }
        let out = match self.node() {
            Node::Var(v) => val(*v),
            Node::Const(c) => c.clone(),
            Node::Sum(ch) => {
                let mut acc = C::zero();
                for c in ch {
                    acc = acc.add(&c.eval_memo(val, memo));
                }
                acc
            }
            Node::Prod(ch) => {
                let mut acc = C::one();
                for c in ch {
                    acc = acc.mul(&c.eval_memo(val, memo));
                }
                acc
            }
        };
        memo.insert(self.key(), out.clone());
        out
    }

    /// Flattens the circuit into a polynomial, expanding each shared node
    /// exactly once (results are memoised per DAG node).
    pub fn expand(&self) -> Polynomial<C> {
        let mut memo: FxHashMap<usize, Polynomial<C>> = FxHashMap::default();
        self.expand_memo(&mut memo)
    }

    fn expand_memo(&self, memo: &mut FxHashMap<usize, Polynomial<C>>) -> Polynomial<C> {
        if let Some(p) = memo.get(&self.key()) {
            return p.clone();
        }
        let out = match self.node() {
            Node::Var(v) => Polynomial::variable(*v),
            Node::Const(c) => Polynomial::constant(c.clone()),
            Node::Sum(ch) => {
                let mut acc = Polynomial::zero();
                for c in ch {
                    acc = acc.add(&c.expand_memo(memo));
                }
                acc
            }
            Node::Prod(ch) => {
                let mut acc = Polynomial::constant(C::one());
                for c in ch {
                    acc = acc.mul(&c.expand_memo(memo));
                }
                acc
            }
        };
        memo.insert(self.key(), out.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn expansion_of_simple_product() {
        // (x + y) * 2 = 2x + 2y
        let c = Circuit::prod(vec![
            Circuit::sum(vec![Circuit::var(v(1)), Circuit::var(v(2))]),
            Circuit::constant(2.0),
        ]);
        let p = c.expand();
        assert_eq!(p.size_m(), 2);
        assert_eq!(p.coefficient(&Monomial::var(v(1))), 2.0);
        assert_eq!(p.coefficient(&Monomial::var(v(2))), 2.0);
    }

    #[test]
    fn eval_matches_expansion() {
        let shared: Circuit<f64> = Circuit::sum(vec![Circuit::var(v(1)), Circuit::constant(1.0)]);
        // (x+1) * (x+1) + (x+1)
        let c = Circuit::sum(vec![
            Circuit::prod(vec![shared.clone(), shared.clone()]),
            shared,
        ]);
        let val = |_x: VarId| 3.0;
        assert_eq!(c.eval(val), c.expand().eval(val));
        assert_eq!(c.eval(val), 20.0); // (3+1)² + (3+1)
    }

    #[test]
    fn dag_size_counts_shared_nodes_once() {
        let shared: Circuit<f64> = Circuit::sum(vec![Circuit::var(v(1)), Circuit::var(v(2))]); // 3 nodes
        let c = Circuit::prod(vec![shared.clone(), shared]); // +1 node
        assert_eq!(c.dag_size(), 4);
        assert_eq!(c.tree_size(), 7); // unshared: prod + 2·(sum + 2 leaves)
    }

    #[test]
    fn deep_sharing_expands_linearly() {
        // A chain c_{i+1} = c_i + c_i doubles the tree but grows the DAG by
        // one node per level; expansion must stay polynomial-time.
        let mut c: Circuit<f64> = Circuit::var(v(0));
        for _ in 0..30 {
            c = Circuit::sum(vec![c.clone(), c]);
        }
        assert_eq!(c.dag_size(), 31);
        assert_eq!(c.tree_size(), (1u64 << 31) - 1);
        let p = c.expand();
        assert_eq!(p.size_m(), 1);
        assert_eq!(p.coefficient(&Monomial::var(v(0))), 2f64.powi(30));
    }

    #[test]
    fn empty_sum_and_prod_are_identities() {
        let s: Circuit<f64> = Circuit::sum(vec![]);
        let p: Circuit<f64> = Circuit::prod(vec![]);
        assert!(s.expand().is_zero());
        assert_eq!(p.expand().coefficient(&Monomial::one()), 1.0);
    }

    #[test]
    fn singleton_sum_passes_through() {
        let c: Circuit<f64> = Circuit::sum(vec![Circuit::var(v(3))]);
        let p = c.expand();
        assert_eq!(p.coefficient(&Monomial::var(v(3))), 1.0);
        assert_eq!(p.size_m(), 1);
    }
}
