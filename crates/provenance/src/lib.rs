#![warn(missing_docs)]
//! Provenance polynomials and their supporting algebra.
//!
//! This crate implements the provenance model of §2.1 of *Hypothetical
//! Reasoning via Provenance Abstraction* (Deutch, Moskovitch, Rinetzky,
//! SIGMOD 2019):
//!
//! * [`var`] — interned provenance variables (tuple / cell annotations and
//!   the meta-variables introduced by abstraction),
//! * [`monomial`] — products of variables with exponents,
//! * [`polynomial`] — sums of coefficient-weighted monomials, with the size
//!   measure `|P|_M` (number of monomials) and granularity `|P|_V` (number
//!   of distinct variables),
//! * [`polyset`] — multisets of polynomials as produced by provenance-aware
//!   query evaluation, lifting both measures point-wise,
//! * [`coeff`] — coefficient rings (`f64`, integers, exact rationals),
//! * [`semiring`] — commutative semirings and the specialisation of
//!   `N[X]` provenance polynomials into them (Green's observation that the
//!   polynomial semiring is universal),
//! * [`circuit`] — shared-DAG provenance circuits with flattening into
//!   polynomials,
//! * [`valuation`] — hypothetical-scenario valuations of variables,
//! * [`parse`] / [`display`] — a small text format used by tests, examples
//!   and golden files.

pub mod circuit;
pub mod coeff;
pub mod display;
pub mod fxhash;
pub mod monomial;
pub mod parse;
pub mod polynomial;
pub mod polyset;
pub mod semiring;
pub mod valuation;
pub mod var;

pub use circuit::Circuit;
pub use coeff::{Coefficient, Rational};
pub use monomial::Monomial;
pub use polynomial::Polynomial;
pub use polyset::PolySet;
pub use valuation::Valuation;
pub use var::{VarId, VarTable};
