#![warn(missing_docs)]
//! Provenance polynomials and their supporting algebra.
//!
//! This crate implements the provenance model of §2.1 of *Hypothetical
//! Reasoning via Provenance Abstraction* (Deutch, Moskovitch, Rinetzky,
//! SIGMOD 2019):
//!
//! * [`var`] — interned provenance variables (tuple / cell annotations and
//!   the meta-variables introduced by abstraction),
//! * [`monomial`] — products of variables with exponents,
//! * [`polynomial`] — sums of coefficient-weighted monomials, with the size
//!   measure `|P|_M` (number of monomials) and granularity `|P|_V` (number
//!   of distinct variables),
//! * [`polyset`] — multisets of polynomials as produced by provenance-aware
//!   query evaluation, lifting both measures point-wise,
//! * [`intern`] — the shared interning core: an append-only distinct-
//!   monomial arena with dense `u32` ids ([`intern::MonoArena`]) and the
//!   matching variable densifier ([`intern::VarSpace`]) — the single
//!   provenance currency every layer above speaks,
//! * [`compiled`] — the columnar lowering of a poly-set for fast batch
//!   scenario evaluation (flat arenas, densified `u32` variable space);
//!   built either from a [`polyset::PolySet`] or by freezing a working
//!   set's arena directly,
//! * [`simd`] — runtime-dispatched evaluation kernels over the compiled
//!   columns (AVX2 + a portable lane fallback, selected behind
//!   [`simd::Kernel`]): [`simd::LANES`] scenarios per pass off one
//!   packed block table, bit-for-bit identical to the scalar sweep,
//! * [`working`] — the interned working-set representation for in-flight
//!   abstraction rewrites over a [`intern::MonoArena`], the rewriting
//!   counterpart of [`compiled`],
//! * [`persist`] — durable compiled artifacts: a versioned, checksummed
//!   on-disk container with an owned load path and a zero-copy
//!   memory-mapped one that reslices the compiled columns straight out
//!   of the file, plus the deterministic fault-injection seam
//!   ([`persist::FaultFs`]) the torn-write proofs run on,
//! * [`guard`] — guarded execution: wall-clock/step [`guard::Budget`]s,
//!   shareable [`guard::CancelToken`]s and the amortised
//!   [`guard::Checkpoint`] probe the long-running loops carry, with
//!   anytime [`guard::Completion`] reporting and the shared
//!   panic-isolation seam,
//! * [`coeff`] — coefficient rings (`f64`, integers, exact rationals),
//! * [`semiring`] — commutative semirings and the specialisation of
//!   `N[X]` provenance polynomials into them (Green's observation that the
//!   polynomial semiring is universal),
//! * [`circuit`] — shared-DAG provenance circuits with flattening into
//!   polynomials,
//! * [`valuation`] — hypothetical-scenario valuations of variables,
//! * [`parse`] / [`display`] — a small text format used by tests, examples
//!   and golden files.
//!
//! # Example
//!
//! Parse a provenance poly-set, pose Example 1's March-discount scenario,
//! and evaluate it through both the hash-map and the compiled columnar
//! path — the two agree bit for bit:
//!
//! ```
//! use provabs_provenance::compiled::CompiledPolySet;
//! use provabs_provenance::parse::parse_polyset;
//! use provabs_provenance::valuation::Valuation;
//! use provabs_provenance::var::VarTable;
//!
//! let mut vars = VarTable::new();
//! let polys = parse_polyset("220.8·p1·m1 + 240·p1·m3", &mut vars).unwrap();
//! let m3 = vars.lookup("m3").unwrap();
//! let scenario = Valuation::neutral().set(m3, 0.8); // −20 % in March
//! let compiled = CompiledPolySet::compile(&polys);
//! assert_eq!(compiled.eval_one(&scenario), scenario.eval_set(&polys));
//! assert!((compiled.eval_one(&scenario)[0] - 412.8).abs() < 1e-9);
//! ```

pub mod circuit;
pub mod coeff;
pub mod compiled;
pub mod display;
#[doc(hidden)] // an implementation detail shared with the sibling crates, not public API
pub mod fxhash;
pub mod guard;
pub mod intern;
pub mod monomial;
pub mod parse;
pub mod persist;
pub mod polynomial;
pub mod polyset;
pub mod semiring;
pub mod simd;
pub mod valuation;
pub mod var;
pub mod working;

pub use circuit::Circuit;
pub use coeff::{Coefficient, Rational};
pub use compiled::{CompiledPolySet, CompiledView};
pub use display::{poly_to_string, polyset_to_string};
pub use guard::{Budget, CancelToken, Completion, Guard, Interrupt};
pub use intern::{MonoArena, MonoId, VarSpace};
pub use monomial::Monomial;
pub use parse::{parse_polynomial, parse_polyset};
pub use persist::PersistError;
pub use polynomial::Polynomial;
pub use polyset::PolySet;
pub use simd::{Kernel, KernelInfo};
pub use valuation::Valuation;
pub use var::{VarId, VarTable};
pub use working::WorkingSet;
