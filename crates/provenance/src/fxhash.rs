//! A minimal FxHash-style hasher.
//!
//! Provenance compression is dominated by hash-map operations over small
//! integer keys ([`crate::var::VarId`]s and interned monomials). The
//! standard library's SipHash is collision-hardened but slow for such keys;
//! the multiply-rotate scheme used by rustc (`FxHasher`) is a large win and
//! trivially small, so we implement it in-crate rather than adding an
//! external dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher in the style of rustc's `FxHasher`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Hash-map keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// Hash-set keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_stay_distinct() {
        let mut set = FxHashSet::default();
        for i in 0u64..10_000 {
            set.insert(i);
        }
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        assert_eq!(map.get(&2), Some(&"two"));
        assert_eq!(map.get(&3), None);
    }

    #[test]
    fn hashing_strings_works() {
        let mut set: FxHashSet<String> = FxHashSet::default();
        set.insert("alpha".to_string());
        set.insert("beta".to_string());
        set.insert("alpha".to_string());
        assert_eq!(set.len(), 2);
    }
}
