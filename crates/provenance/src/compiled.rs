//! Compiled, columnar polynomial sets for fast batch evaluation.
//!
//! The hot loop of hypothetical reasoning evaluates the same `PolySet`
//! under many scenario valuations (`P↓S` per analyst question, Figure 10).
//! The [`crate::polynomial::Polynomial`] representation is a hash map of
//! monomials — ideal for algebraic rewriting (merging under `map_vars`),
//! terrible for repeated evaluation: every variable factor costs a hash
//! probe into the [`crate::valuation::Valuation`], and iterating the map
//! hops across scattered heap buckets.
//!
//! [`CompiledPolySet`] lowers a poly-set once into four flat, contiguous
//! arenas (struct-of-arrays):
//!
//! ```text
//! coeffs      [c0, c1, c2, ...]            one per monomial
//! mono_ends   [2, 3, 5, ...]               factor-range end per monomial
//! poly_ends   [2, 3, ...]                  monomial-range end per polynomial
//! factor_vars [0, 1, 2, 0, 3, ...]         dense local variable index
//! factor_exps [1, 1, 2, 1, 1, ...]         exponent-run per factor
//! ```
//!
//! Variables are densified into a batch-local `u32` index space, so a
//! valuation becomes a plain `Vec<C>` lookup table: evaluation is a single
//! linear sweep over the arenas with direct slice indexing — no hashing,
//! no pointer chasing. Evaluation visits monomials in exactly the order
//! [`Polynomial::iter`] yields them, so results are bit-for-bit identical
//! to the hash-map path (floating-point summation order is preserved).

use crate::coeff::Coefficient;
use crate::intern::VarSpace;
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::polyset::PolySet;
use crate::valuation::Valuation;
use crate::var::VarId;
use crate::working::WorkingSet;

/// A [`PolySet`] lowered into flat columnar arenas for batch evaluation.
///
/// Build one with [`CompiledPolySet::compile`], then evaluate scenarios
/// with [`eval_one`](CompiledPolySet::eval_one) /
/// [`eval_all`](CompiledPolySet::eval_all). The compiled form is
/// immutable; re-compile after abstraction changes the poly-set.
#[derive(Clone, Debug)]
pub struct CompiledPolySet<C> {
    /// One coefficient per monomial, in evaluation order.
    pub(crate) coeffs: Vec<C>,
    /// Per monomial: exclusive end of its factor range in
    /// `factor_vars`/`factor_exps` (prefix ends; the start is the previous
    /// entry, 0 for the first).
    pub(crate) mono_ends: Vec<u32>,
    /// Per polynomial: exclusive end of its monomial range in
    /// `coeffs`/`mono_ends`.
    pub(crate) poly_ends: Vec<u32>,
    /// Dense batch-local variable index per factor.
    pub(crate) factor_vars: Vec<u32>,
    /// Exponent per factor (≥ 1 by monomial canonicalisation).
    pub(crate) factor_exps: Vec<u32>,
    /// Local index → original variable (the densification order).
    pub(crate) vars: Vec<VarId>,
}

impl<C: Coefficient> CompiledPolySet<C> {
    /// Lowers `polys` into the columnar form.
    ///
    /// Runs in one pass over the poly-set; the arena sizes equal the
    /// poly-set's monomial and factor counts exactly.
    pub fn compile(polys: &PolySet<C>) -> Self {
        let num_monos = polys.size_m();
        let mut coeffs = Vec::with_capacity(num_monos);
        let mut mono_ends = Vec::with_capacity(num_monos);
        let mut poly_ends = Vec::with_capacity(polys.len());
        let mut factor_vars = Vec::new();
        let mut factor_exps = Vec::new();
        let mut space = VarSpace::new();
        for p in polys.iter() {
            for (m, c) in p.iter() {
                coeffs.push(c.clone());
                for (v, e) in m.factors() {
                    factor_vars.push(space.local(v));
                    factor_exps.push(e);
                }
                mono_ends.push(arena_end(factor_vars.len()));
            }
            poly_ends.push(arena_end(coeffs.len()));
        }
        Self {
            coeffs,
            mono_ends,
            poly_ends,
            factor_vars,
            factor_exps,
            vars: space.into_vars(),
        }
    }

    /// Freezes an interned [`WorkingSet`] into the columnar evaluation
    /// form by re-slicing its arena — the monomials are read straight out
    /// of the shared [`MonoArena`](crate::intern::MonoArena), so no
    /// intermediate [`PolySet`] (and no monomial re-hashing) is involved.
    /// This is how the abstraction pipeline hands its rewritten `𝒫↓S` to
    /// the evaluator.
    ///
    /// Each polynomial's monomials are laid out in the working set's
    /// canonical ascending-id order (matching
    /// [`WorkingSet::to_polyset`]), which is deterministic for a given
    /// working set. Note that this order generally differs from the
    /// hash-map iteration order [`compile`](Self::compile) preserves, so
    /// floating-point sums may differ from the `to_polyset` → `compile`
    /// round-trip in the last bit; term *sets* and exact-coefficient
    /// results are identical (see the `intern_equivalence` suite).
    pub fn from_working(ws: &WorkingSet<C>) -> Self {
        let num_monos = ws.size_m();
        let mut coeffs = Vec::with_capacity(num_monos);
        let mut mono_ends = Vec::with_capacity(num_monos);
        let mut poly_ends = Vec::with_capacity(ws.num_polys());
        let mut factor_vars = Vec::new();
        let mut factor_exps = Vec::new();
        let mut space = VarSpace::new();
        for pi in 0..ws.num_polys() {
            for id in ws.sorted_mono_ids(pi) {
                coeffs.push(ws.coeff(pi, id));
                for (v, e) in ws.mono(id).factors() {
                    factor_vars.push(space.local(v));
                    factor_exps.push(e);
                }
                mono_ends.push(arena_end(factor_vars.len()));
            }
            poly_ends.push(arena_end(coeffs.len()));
        }
        Self {
            coeffs,
            mono_ends,
            poly_ends,
            factor_vars,
            factor_exps,
            vars: space.into_vars(),
        }
    }

    /// Borrows the six columns as a [`CompiledView`] — the form every
    /// evaluation entry point actually consumes, and the type a
    /// memory-mapped artifact ([`crate::persist`]) produces without
    /// materialising a `CompiledPolySet` at all.
    pub fn view(&self) -> CompiledView<'_, C> {
        CompiledView {
            coeffs: &self.coeffs,
            mono_ends: &self.mono_ends,
            poly_ends: &self.poly_ends,
            factor_vars: &self.factor_vars,
            factor_exps: &self.factor_exps,
            vars: &self.vars,
        }
    }

    /// Number of polynomials.
    pub fn num_polys(&self) -> usize {
        self.poly_ends.len()
    }

    /// Whether the compiled set contains no polynomials.
    pub fn is_empty(&self) -> bool {
        self.poly_ends.is_empty()
    }

    /// Total number of monomials across all polynomials (`|𝒫|_M`).
    pub fn num_monomials(&self) -> usize {
        self.coeffs.len()
    }

    /// Total number of variable factors in the arena.
    pub fn num_factors(&self) -> usize {
        self.factor_vars.len()
    }

    /// Number of distinct variables (`|𝒫|_V`, the densified index space).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The densification order: local index `i` stands for `vars()[i]`.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Heap footprint of the arenas in bytes — compare with
    /// [`PolySet::estimated_bytes`] to see the columnar saving.
    pub fn estimated_bytes(&self) -> usize {
        self.coeffs.capacity() * std::mem::size_of::<C>()
            + (self.mono_ends.capacity()
                + self.poly_ends.capacity()
                + self.factor_vars.capacity()
                + self.factor_exps.capacity())
                * std::mem::size_of::<u32>()
            + self.vars.capacity() * std::mem::size_of::<VarId>()
    }

    /// Densifies a sparse valuation into the batch-local lookup table:
    /// `table[i]` is the value of local variable `i`.
    pub fn valuation_table(&self, val: &Valuation<C>) -> Vec<C> {
        self.view().valuation_table(val)
    }

    /// [`valuation_table`](Self::valuation_table) into a caller-owned
    /// buffer: `table` is cleared and refilled, so a batch loop that keeps
    /// one buffer across scenarios is allocation-free after the first
    /// iteration (the capacity warms up once and is reused). This is what
    /// [`eval_all`](Self::eval_all) and the executor's batch loop do.
    pub fn valuation_table_into(&self, val: &Valuation<C>, table: &mut Vec<C>) {
        self.view().valuation_table_into(val, table)
    }

    /// Evaluates every polynomial against a dense lookup table produced by
    /// [`valuation_table`](Self::valuation_table), appending one value per
    /// polynomial to `out`.
    ///
    /// # Panics
    /// Panics if `table` is shorter than [`num_vars`](Self::num_vars).
    pub fn eval_into(&self, table: &[C], out: &mut Vec<C>) {
        self.view().eval_into(table, out)
    }

    /// Evaluates every polynomial under one valuation (one value per
    /// polynomial, same order and bit-identical values as
    /// [`Valuation::eval_set`]).
    pub fn eval_one(&self, val: &Valuation<C>) -> Vec<C> {
        self.view().eval_one(val)
    }

    /// Evaluates the whole scenario batch: `result[s][p]` is the value of
    /// polynomial `p` under valuation `s`. The densified lookup table is
    /// reused across scenarios.
    pub fn eval_all(&self, vals: &[Valuation<C>]) -> Vec<Vec<C>> {
        self.view().eval_all(vals)
    }

    /// The semantics-equivalence bridge: reconstructs the hash-map-backed
    /// [`PolySet`] this compiled form denotes. `compile` then `to_polyset`
    /// is the identity up to [`Polynomial`] equality (tested), which is
    /// what makes the compiled evaluator a drop-in replacement.
    pub fn to_polyset(&self) -> PolySet<C> {
        self.view().to_polyset()
    }
}

/// A borrowed view of the six compiled columns — the common currency of
/// every evaluator.
///
/// The slices can come from a live [`CompiledPolySet`]
/// ([`CompiledPolySet::view`]) or be resliced straight out of a durable
/// artifact's mapped bytes ([`crate::persist::SharedCompiled::view`]);
/// the evaluation engines (the columnar sweep here, the lane kernels in
/// [`crate::simd`], the batch executor in `provabs-scenario`) cannot tell
/// the difference — which is exactly what makes the zero-copy load path
/// a drop-in.
#[derive(Debug)]
pub struct CompiledView<'a, C> {
    /// One coefficient per monomial, in evaluation order.
    pub(crate) coeffs: &'a [C],
    /// Per monomial: exclusive end of its factor range (prefix ends).
    pub(crate) mono_ends: &'a [u32],
    /// Per polynomial: exclusive end of its monomial range.
    pub(crate) poly_ends: &'a [u32],
    /// Dense batch-local variable index per factor.
    pub(crate) factor_vars: &'a [u32],
    /// Exponent per factor (≥ 1 by monomial canonicalisation).
    pub(crate) factor_exps: &'a [u32],
    /// Local index → original variable (the densification order).
    pub(crate) vars: &'a [VarId],
}

// Manual impls: a view of six slices is Copy regardless of whether `C`
// itself is (a derive would demand `C: Copy`/`C: Clone`).
impl<C> Clone for CompiledView<'_, C> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<C> Copy for CompiledView<'_, C> {}

impl<'a, C: Coefficient> CompiledView<'a, C> {
    /// Number of polynomials.
    pub fn num_polys(&self) -> usize {
        self.poly_ends.len()
    }

    /// Whether the compiled set contains no polynomials.
    pub fn is_empty(&self) -> bool {
        self.poly_ends.is_empty()
    }

    /// Total number of monomials across all polynomials (`|𝒫|_M`).
    pub fn num_monomials(&self) -> usize {
        self.coeffs.len()
    }

    /// Total number of variable factors in the arena.
    pub fn num_factors(&self) -> usize {
        self.factor_vars.len()
    }

    /// Number of distinct variables (`|𝒫|_V`, the densified index space).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The densification order: local index `i` stands for `vars()[i]`.
    pub fn vars(&self) -> &'a [VarId] {
        self.vars
    }

    /// Densifies a sparse valuation into the batch-local lookup table:
    /// `table[i]` is the value of local variable `i`.
    pub fn valuation_table(&self, val: &Valuation<C>) -> Vec<C> {
        let mut table = Vec::with_capacity(self.vars.len());
        self.valuation_table_into(val, &mut table);
        table
    }

    /// [`valuation_table`](Self::valuation_table) into a caller-owned
    /// buffer (cleared and refilled; see
    /// [`CompiledPolySet::valuation_table_into`]).
    pub fn valuation_table_into(&self, val: &Valuation<C>, table: &mut Vec<C>) {
        table.clear();
        table.extend(self.vars.iter().map(|&v| val.get(v)));
    }

    /// Evaluates every polynomial against a dense lookup table produced by
    /// [`valuation_table`](Self::valuation_table), appending one value per
    /// polynomial to `out`.
    ///
    /// # Panics
    /// Panics if `table` is shorter than [`num_vars`](Self::num_vars).
    pub fn eval_into(&self, table: &[C], out: &mut Vec<C>) {
        assert!(table.len() >= self.vars.len(), "valuation table too short");
        out.reserve(self.poly_ends.len());
        let mut mono = 0usize;
        let mut fac = 0usize;
        for &poly_end in self.poly_ends {
            let mut acc = C::zero();
            while mono < poly_end as usize {
                let fac_end = self.mono_ends[mono] as usize;
                let mut term = self.coeffs[mono].clone();
                while fac < fac_end {
                    let v = &table[self.factor_vars[fac] as usize];
                    let e = self.factor_exps[fac];
                    // Small-exponent fast path: `pow(1)` is the identity
                    // for every lawful coefficient and the inlined squares
                    // below reproduce `pow`'s multiply tree exactly
                    // (multiplication by `one()` is exact and IEEE-754
                    // multiplication is commutative), so skipping the
                    // `pow` call never changes a bit — the scalar engine
                    // pays no `powi`-shaped overhead the lane kernels
                    // (`crate::simd`) have specialised away.
                    term = match e {
                        1 => term.mul(v),
                        2 => term.mul(&v.mul(v)),
                        3 => term.mul(&v.mul(v).mul(v)),
                        _ => term.mul(&v.pow(e)),
                    };
                    fac += 1;
                }
                acc = acc.add(&term);
                mono += 1;
            }
            out.push(acc);
        }
    }

    /// Evaluates every polynomial under one valuation (one value per
    /// polynomial, same order and bit-identical values as
    /// [`Valuation::eval_set`]).
    pub fn eval_one(&self, val: &Valuation<C>) -> Vec<C> {
        let table = self.valuation_table(val);
        let mut out = Vec::new();
        self.eval_into(&table, &mut out);
        out
    }

    /// Evaluates the whole scenario batch: `result[s][p]` is the value of
    /// polynomial `p` under valuation `s`. The densified lookup table is
    /// reused across scenarios.
    pub fn eval_all(&self, vals: &[Valuation<C>]) -> Vec<Vec<C>> {
        let mut table = Vec::with_capacity(self.vars.len());
        vals.iter()
            .map(|val| {
                self.valuation_table_into(val, &mut table);
                let mut out = Vec::new();
                self.eval_into(&table, &mut out);
                out
            })
            .collect()
    }

    /// The semantics-equivalence bridge: reconstructs the hash-map-backed
    /// [`PolySet`] these columns denote (see
    /// [`CompiledPolySet::to_polyset`]).
    pub fn to_polyset(&self) -> PolySet<C> {
        let mut polys = Vec::with_capacity(self.poly_ends.len());
        let mut mono = 0usize;
        let mut fac = 0usize;
        for &poly_end in self.poly_ends {
            let mut p = Polynomial::zero();
            while mono < poly_end as usize {
                let fac_end = self.mono_ends[mono] as usize;
                let factors = (fac..fac_end)
                    .map(|i| (self.vars[self.factor_vars[i] as usize], self.factor_exps[i]));
                p.add_term(Monomial::from_factors(factors), self.coeffs[mono].clone());
                fac = fac_end;
                mono += 1;
            }
            polys.push(p);
        }
        PolySet::from_vec(polys)
    }

    /// Rebuilds an owned [`CompiledPolySet`] by copying the six columns —
    /// how a session opened from an artifact detaches from the mapping
    /// when it needs an owned lowering.
    pub fn to_owned_set(&self) -> CompiledPolySet<C> {
        CompiledPolySet {
            coeffs: self.coeffs.to_vec(),
            mono_ends: self.mono_ends.to_vec(),
            poly_ends: self.poly_ends.to_vec(),
            factor_vars: self.factor_vars.to_vec(),
            factor_exps: self.factor_exps.to_vec(),
            vars: self.vars.to_vec(),
        }
    }
}

/// Converts an arena length into a `u32` prefix end, guarding overflow.
fn arena_end(len: usize) -> u32 {
    u32::try_from(len).expect("arena exceeds u32::MAX entries")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeff::Rational;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn poly(terms: &[(&[(u32, u32)], f64)]) -> Polynomial<f64> {
        Polynomial::from_terms(terms.iter().map(|(fs, c)| {
            (
                Monomial::from_factors(fs.iter().map(|&(i, e)| (v(i), e))),
                *c,
            )
        }))
    }

    fn sample() -> PolySet<f64> {
        PolySet::from_vec(vec![
            poly(&[(&[(1, 1), (2, 1)], 2.0), (&[(1, 2)], 3.0)]),
            poly(&[(&[(7, 1)], 4.0), (&[], 5.0)]),
            poly(&[]),
        ])
    }

    #[test]
    fn arena_shapes_match_the_polyset() {
        let polys = sample();
        let c = CompiledPolySet::compile(&polys);
        assert_eq!(c.num_polys(), 3);
        assert_eq!(c.num_monomials(), polys.size_m());
        assert_eq!(c.num_vars(), polys.size_v());
        assert_eq!(c.num_factors(), 4); // v1·v2, v1², v7, 1
        assert!(!c.is_empty());
        assert!(c.estimated_bytes() > 0);
    }

    #[test]
    fn eval_matches_hashmap_bit_for_bit() {
        let polys = sample();
        let c = CompiledPolySet::compile(&polys);
        let vals = [
            Valuation::neutral(),
            Valuation::neutral().set(v(1), 3.0).set(v(2), -0.5),
            Valuation::with_default(0.25).set(v(7), 1e9),
        ];
        for val in &vals {
            let fast = c.eval_one(val);
            let slow = val.eval_set(&polys);
            assert_eq!(fast.len(), slow.len());
            for (a, b) in fast.iter().zip(&slow) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
            }
        }
        let batch = c.eval_all(&vals);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], c.eval_one(&vals[0]));
    }

    #[test]
    fn roundtrip_bridge_preserves_semantics() {
        let polys = sample();
        let c = CompiledPolySet::compile(&polys);
        let back = c.to_polyset();
        assert_eq!(back.len(), polys.len());
        for (a, b) in back.iter().zip(polys.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_polyset_and_empty_batch() {
        let polys: PolySet<f64> = PolySet::new();
        let c = CompiledPolySet::compile(&polys);
        assert!(c.is_empty());
        assert_eq!(c.eval_one(&Valuation::neutral()), Vec::<f64>::new());
        assert_eq!(c.eval_all(&[]), Vec::<Vec<f64>>::new());
    }

    #[test]
    fn zero_polynomials_evaluate_to_zero() {
        let polys = PolySet::from_vec(vec![Polynomial::<f64>::zero(), poly(&[(&[(1, 1)], 2.0)])]);
        let c = CompiledPolySet::compile(&polys);
        let out = c.eval_one(&Valuation::neutral().set(v(1), 10.0));
        assert_eq!(out, vec![0.0, 20.0]);
    }

    #[test]
    fn exponents_use_the_lookup_table() {
        // 2·x²·y at x=3, y=5 → 90 (mirrors the hashmap eval test).
        let polys = PolySet::from_vec(vec![poly(&[(&[(1, 2), (2, 1)], 2.0)])]);
        let c = CompiledPolySet::compile(&polys);
        let val = Valuation::neutral().set(v(1), 3.0).set(v(2), 5.0);
        assert_eq!(c.eval_one(&val), vec![90.0]);
    }

    #[test]
    fn generic_coefficients_compile_too() {
        let p: Polynomial<Rational> = Polynomial::from_terms([
            (Monomial::from_vars([v(1)]), Rational::new(1, 2)),
            (Monomial::from_vars([v(2)]), Rational::int(3)),
        ]);
        let polys = PolySet::from_vec(vec![p]);
        let c = CompiledPolySet::compile(&polys);
        let val = Valuation::neutral().set(v(1), Rational::int(4));
        assert_eq!(c.eval_one(&val), val.eval_set(&polys));
        assert_eq!(c.eval_one(&val), vec![Rational::int(5)]);
    }

    #[test]
    fn densification_is_first_occurrence_order() {
        let polys = PolySet::from_vec(vec![poly(&[(&[(9, 1)], 1.0)]), poly(&[(&[(4, 1)], 1.0)])]);
        let c = CompiledPolySet::compile(&polys);
        assert_eq!(c.vars(), &[v(9), v(4)]);
        let table = c.valuation_table(&Valuation::neutral().set(v(4), 2.0));
        assert_eq!(table, vec![1.0, 2.0]);
    }

    #[test]
    fn from_working_matches_compile_semantics() {
        let polys = sample();
        let ws = WorkingSet::from_polyset(&polys);
        let frozen = CompiledPolySet::from_working(&ws);
        assert_eq!(frozen.num_polys(), polys.len());
        assert_eq!(frozen.num_monomials(), polys.size_m());
        assert_eq!(frozen.num_vars(), polys.size_v());
        // The frozen form denotes the same poly-set.
        let back = frozen.to_polyset();
        for (a, b) in back.iter().zip(polys.iter()) {
            assert_eq!(a, b);
        }
        // Its values agree with the hash-map evaluator (exactly here: the
        // sample sums are short enough to be order-insensitive).
        let val = Valuation::neutral().set(v(1), 3.0).set(v(7), -2.0);
        let fast = frozen.eval_one(&val);
        let slow = val.eval_set(&polys);
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b}");
        }
    }

    #[test]
    fn from_working_tracks_rewrites() {
        let polys = sample();
        let mut ws = WorkingSet::from_polyset(&polys);
        // v2 and v7 occur in distinct monomials (group-compatible).
        ws.apply_group(&[v(2), v(7)], v(30), &[0, 1]);
        let frozen = CompiledPolySet::from_working(&ws);
        let expected = polys.map_vars(|x| if x == v(2) || x == v(7) { v(30) } else { x });
        assert_eq!(frozen.num_monomials(), expected.size_m());
        for (a, b) in frozen.to_polyset().iter().zip(expected.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic(expected = "valuation table too short")]
    fn short_table_panics() {
        let polys = sample();
        let c = CompiledPolySet::compile(&polys);
        let mut out = Vec::new();
        c.eval_into(&[1.0], &mut out);
    }
}
