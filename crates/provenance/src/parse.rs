//! A small parser for the polynomial text format.
//!
//! Accepts the notation used throughout the paper (and produced by
//! [`crate::display`]): monomials joined by `+`, factors joined by `·` or
//! `*`, optional numeric coefficient first, optional `^exp` per variable.
//! Example: `220.8 * p1 * m1 + 240·p1·m3 + 2·x^2`.
//!
//! Used by tests and examples to state golden polynomials exactly as the
//! paper prints them.

use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::var::VarTable;
use std::fmt;

/// Errors produced by [`parse_polynomial`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A term was empty (e.g. `x + + y`).
    EmptyTerm,
    /// A factor was neither a number nor a variable name.
    BadFactor(String),
    /// An exponent was not a positive integer.
    BadExponent(String),
    /// A second numeric coefficient appeared inside one term.
    DuplicateCoefficient(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::EmptyTerm => write!(f, "empty term"),
            ParseError::BadFactor(s) => write!(f, "bad factor: {s:?}"),
            ParseError::BadExponent(s) => write!(f, "bad exponent: {s:?}"),
            ParseError::DuplicateCoefficient(s) => {
                write!(f, "more than one numeric coefficient in term {s:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

fn is_var_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

/// Parses a polynomial with `f64` coefficients, interning variables into
/// `vars`.
pub fn parse_polynomial(input: &str, vars: &mut VarTable) -> Result<Polynomial<f64>, ParseError> {
    let input = input.trim();
    if input.is_empty() || input == "0" {
        return Ok(Polynomial::zero());
    }
    let mut poly = Polynomial::zero();
    for raw_term in input.split('+') {
        let term = raw_term.trim();
        if term.is_empty() {
            return Err(ParseError::EmptyTerm);
        }
        let mut coeff: Option<f64> = None;
        let mut factors: Vec<(String, u32)> = Vec::new();
        for raw_factor in term.split(['*', '·']) {
            let factor = raw_factor.trim();
            if factor.is_empty() {
                return Err(ParseError::BadFactor(raw_term.to_string()));
            }
            let first = factor.chars().next().expect("non-empty");
            if is_var_start(first) {
                let (name, exp) = match factor.split_once('^') {
                    Some((name, exp_str)) => {
                        let exp: u32 = exp_str
                            .trim()
                            .parse()
                            .map_err(|_| ParseError::BadExponent(exp_str.to_string()))?;
                        if exp == 0 {
                            return Err(ParseError::BadExponent(exp_str.to_string()));
                        }
                        (name.trim(), exp)
                    }
                    None => (factor, 1),
                };
                if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    return Err(ParseError::BadFactor(factor.to_string()));
                }
                factors.push((name.to_string(), exp));
            } else {
                let value: f64 = factor
                    .parse()
                    .map_err(|_| ParseError::BadFactor(factor.to_string()))?;
                if coeff.replace(value).is_some() {
                    return Err(ParseError::DuplicateCoefficient(term.to_string()));
                }
            }
        }
        let mono = Monomial::from_factors(
            factors
                .into_iter()
                .map(|(name, exp)| (vars.intern(&name), exp)),
        );
        poly.add_term(mono, coeff.unwrap_or(1.0));
    }
    Ok(poly)
}

/// Parses several polynomials, one per non-empty line.
pub fn parse_polyset(
    input: &str,
    vars: &mut VarTable,
) -> Result<crate::polyset::PolySet<f64>, ParseError> {
    let mut out = crate::polyset::PolySet::new();
    for line in input.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        out.push(parse_polynomial(line, vars)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::poly_to_string;

    #[test]
    fn parses_paper_example_2() {
        let mut vars = VarTable::new();
        let p = parse_polynomial(
            "220.8 * p1 * m1 + 240 * p1 * m3 + 127.4 * f1 * m1 + 114.45 * f1 * m3 \
             + 75.9 * y1 * m1 + 72.5 * y1 * m3 + 42 * v * m1 + 24.2 * v * m3",
            &mut vars,
        )
        .expect("parse");
        assert_eq!(p.size_m(), 8);
        assert_eq!(p.size_v(), 6); // p1 f1 y1 v m1 m3
        let p1 = vars.lookup("p1").expect("interned");
        let m1 = vars.lookup("m1").expect("interned");
        assert_eq!(p.coefficient(&Monomial::from_vars([p1, m1])), 220.8);
    }

    #[test]
    fn parses_exponents_and_bare_vars() {
        let mut vars = VarTable::new();
        let p = parse_polynomial("x^2 + 3·x·y + y", &mut vars).expect("parse");
        assert_eq!(p.size_m(), 3);
        let x = vars.lookup("x").expect("interned");
        assert_eq!(p.coefficient(&Monomial::from_factors([(x, 2)])), 1.0);
    }

    #[test]
    fn roundtrips_through_display() {
        let mut vars = VarTable::new();
        let p = parse_polynomial("1.5 + 2·a·b + 3·b^2", &mut vars).expect("parse");
        let s = poly_to_string(&p, &vars);
        let mut vars2 = VarTable::new();
        let p2 = parse_polynomial(&s, &mut vars2).expect("reparse");
        assert_eq!(p.size_m(), p2.size_m());
        assert_eq!(p.coefficient_mass(), p2.coefficient_mass());
    }

    #[test]
    fn merges_duplicate_monomials() {
        let mut vars = VarTable::new();
        let p = parse_polynomial("2·x + 3·x", &mut vars).expect("parse");
        assert_eq!(p.size_m(), 1);
        let x = vars.lookup("x").expect("interned");
        assert_eq!(p.coefficient(&Monomial::var(x)), 5.0);
    }

    #[test]
    fn rejects_malformed_input() {
        let mut vars = VarTable::new();
        assert!(matches!(
            parse_polynomial("x + + y", &mut vars),
            Err(ParseError::EmptyTerm)
        ));
        assert!(matches!(
            parse_polynomial("2 * 3 * x", &mut vars),
            Err(ParseError::DuplicateCoefficient(_))
        ));
        assert!(matches!(
            parse_polynomial("x^z", &mut vars),
            Err(ParseError::BadExponent(_))
        ));
        assert!(matches!(
            parse_polynomial("x^0", &mut vars),
            Err(ParseError::BadExponent(_))
        ));
        assert!(matches!(
            parse_polynomial("@bad", &mut vars),
            Err(ParseError::BadFactor(_))
        ));
    }

    #[test]
    fn zero_and_empty_inputs() {
        let mut vars = VarTable::new();
        assert!(parse_polynomial("0", &mut vars).expect("parse").is_zero());
        assert!(parse_polynomial("  ", &mut vars).expect("parse").is_zero());
    }

    #[test]
    fn parse_polyset_one_per_line() {
        let mut vars = VarTable::new();
        let ps = parse_polyset("2·x\n\n3·y + x\n", &mut vars).expect("parse");
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.size_m(), 3);
    }

    use crate::monomial::Monomial;
}
