//! The shared monomial-interning core — the one provenance currency.
//!
//! Every stage of the pipeline (engine emission → abstraction rewriting →
//! compiled scenario evaluation) needs the same thing: distinct monomials
//! held exactly once, addressed by dense `u32` ids, with cheap indexes
//! over them. Before this module existed the codebase kept three private
//! copies of that idea — the interning map of
//! [`crate::working::WorkingSet`], the variable densifier of
//! [`crate::compiled::CompiledPolySet`], and the per-operator merge maps
//! of the engine — and converted between them through hash-map-backed
//! [`crate::polyset::PolySet`]s at every crate boundary.
//!
//! [`MonoArena`] is the extracted, shared core:
//!
//! * an **append-only arena** of distinct [`Monomial`]s with dense
//!   [`MonoId`]s — once a monomial is interned its id never changes, so
//!   ids may flow across layers without re-canonicalising or re-hashing
//!   the monomial;
//! * a **postings index** `variable → sorted monomial ids`, the inverted
//!   index group substitutions and candidate scoring probe;
//! * the **memoised remainder index** `(monomial, variable) → (remainder,
//!   exponent)` — the `M_l` operation of §4.1 of the paper, valid forever
//!   because the arena only grows;
//! * a **product memo** `(monomial, monomial) → product`, which turns the
//!   `⊗` of provenance-semiring joins into a single hash probe once a
//!   pair has been seen.
//!
//! [`VarSpace`] is the matching variable densifier: original [`VarId`]s
//! mapped to a dense batch-local `u32` space in first-occurrence order,
//! shared by the compiled evaluator's lowering paths.

use crate::coeff::Coefficient;
use crate::fxhash::FxHashMap;
use crate::monomial::Monomial;
use crate::var::VarId;
use std::hash::Hash;

/// Dense id of an interned monomial within a [`MonoArena`].
pub type MonoId = u32;

/// Adds `coeff` to `map[key]`, dropping the entry when the sum cancels
/// to exactly zero — the one accumulate-and-drop rule every polynomial
/// representation shares ([`Polynomial::add_term`], the working set's
/// id-keyed terms, the engine's interned aggregation). Keeping it in one
/// place keeps the zero-cancellation semantics from diverging between
/// currencies.
///
/// [`Polynomial::add_term`]: crate::polynomial::Polynomial::add_term
pub fn accumulate<K: Eq + Hash, C: Coefficient>(map: &mut FxHashMap<K, C>, key: K, coeff: C) {
    if coeff.is_zero() {
        return;
    }
    use std::collections::hash_map::Entry;
    match map.entry(key) {
        Entry::Occupied(mut e) => {
            let sum = e.get().add(&coeff);
            if sum.is_zero() {
                e.remove();
            } else {
                e.insert(sum);
            }
        }
        Entry::Vacant(e) => {
            e.insert(coeff);
        }
    }
}

/// A dense, first-occurrence-ordered mapping of [`VarId`]s into a local
/// `u32` index space.
///
/// This is the densification step of the compiled evaluator (a valuation
/// becomes a flat lookup table indexed by local id), extracted so every
/// lowering — [`CompiledPolySet::compile`] and
/// [`CompiledPolySet::from_working`] — shares one implementation.
///
/// [`CompiledPolySet::compile`]: crate::compiled::CompiledPolySet::compile
/// [`CompiledPolySet::from_working`]: crate::compiled::CompiledPolySet::from_working
#[derive(Clone, Debug, Default)]
pub struct VarSpace {
    /// Local index → original variable, in first-occurrence order.
    vars: Vec<VarId>,
    /// Original variable → local index.
    index: FxHashMap<VarId, u32>,
}

impl VarSpace {
    /// An empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// The local index of `v`, assigning the next dense index on first
    /// sight.
    pub fn local(&mut self, v: VarId) -> u32 {
        if let Some(&i) = self.index.get(&v) {
            return i;
        }
        let i = u32::try_from(self.vars.len()).expect("more than u32::MAX variables");
        self.vars.push(v);
        self.index.insert(v, i);
        i
    }

    /// The local index of `v`, if it has been assigned.
    pub fn get(&self, v: VarId) -> Option<u32> {
        self.index.get(&v).copied()
    }

    /// The original variable behind local index `i`.
    pub fn var_of(&self, i: u32) -> VarId {
        self.vars[i as usize]
    }

    /// Number of densified variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variable has been densified yet.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// The densification order as a slice: local index `i` stands for
    /// `as_slice()[i]`.
    pub fn as_slice(&self) -> &[VarId] {
        &self.vars
    }

    /// Consumes the space, returning the densification order.
    pub fn into_vars(self) -> Vec<VarId> {
        self.vars
    }
}

/// An append-only arena of distinct monomials with dense ids, postings,
/// and the memoised remainder/product indexes. See the
/// [module docs](self).
#[derive(Clone, Debug, Default)]
pub struct MonoArena {
    /// The interned monomials; `MonoId` indexes this vector.
    monos: Vec<Monomial>,
    /// Interning map over the arena.
    ids: FxHashMap<Monomial, MonoId>,
    /// `variable → sorted monomial ids containing it`. Covers every arena
    /// entry (callers filter against their own liveness).
    postings: FxHashMap<VarId, Vec<MonoId>>,
    /// Memoised remainders: `(monomial, removed variable) → (remainder,
    /// exponent)`. Valid forever (append-only arena).
    remainders: FxHashMap<(MonoId, VarId), (MonoId, u32)>,
    /// Memoised products, keyed with the smaller id first (monomial
    /// multiplication is commutative).
    products: FxHashMap<(MonoId, MonoId), MonoId>,
}

impl MonoArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct monomials interned so far.
    pub fn len(&self) -> usize {
        self.monos.len()
    }

    /// Whether the arena holds no monomial.
    pub fn is_empty(&self) -> bool {
        self.monos.is_empty()
    }

    /// Interns `mono`, registering a fresh id in the postings index on
    /// first sight. Ids grow monotonically, so postings stay sorted by
    /// construction.
    pub fn intern(&mut self, mono: Monomial) -> MonoId {
        if let Some(&id) = self.ids.get(&mono) {
            return id;
        }
        let id = MonoId::try_from(self.monos.len()).expect("more than u32::MAX monomials");
        for v in mono.vars() {
            self.postings.entry(v).or_default().push(id);
        }
        self.monos.push(mono.clone());
        self.ids.insert(mono, id);
        id
    }

    /// The id of `mono`, if it has been interned.
    pub fn get(&self, mono: &Monomial) -> Option<MonoId> {
        self.ids.get(mono).copied()
    }

    /// The interned monomial behind `id`.
    pub fn mono(&self, id: MonoId) -> &Monomial {
        &self.monos[id as usize]
    }

    /// The unit monomial's id (interning it on first use).
    pub fn one(&mut self) -> MonoId {
        self.intern(Monomial::one())
    }

    /// Sorted ids of the arena monomials containing `v` (empty if `v`
    /// never occurred). Includes ids that callers may no longer consider
    /// live — probe your own term maps to filter.
    pub fn postings_of(&self, v: VarId) -> &[MonoId] {
        self.postings.get(&v).map_or(&[], Vec::as_slice)
    }

    /// The memoised `M_l` operation: remainder id and exponent of `v` in
    /// monomial `id` (`v` must occur in it).
    pub fn remainder(&mut self, id: MonoId, v: VarId) -> (MonoId, u32) {
        if let Some(&r) = self.remainders.get(&(id, v)) {
            return r;
        }
        let (rem, exp) = self.monos[id as usize].remove_var(v);
        debug_assert!(exp > 0, "remainder of an absent variable");
        let rem_id = self.intern(rem);
        self.remainders.insert((id, v), (rem_id, exp));
        (rem_id, exp)
    }

    /// Interns the product `mono(a) · mono(b)`, memoised per unordered
    /// pair — the `⊗` of provenance-semiring joins in id space.
    pub fn mul(&mut self, a: MonoId, b: MonoId) -> MonoId {
        let key = (a.min(b), a.max(b));
        if let Some(&p) = self.products.get(&key) {
            return p;
        }
        let product = self.monos[a as usize].mul(&self.monos[b as usize]);
        let id = self.intern(product);
        self.products.insert(key, id);
        id
    }

    /// Interns `mono(id) · v^exp` — the re-attachment step of a group
    /// substitution (remainder times the target meta-variable).
    pub fn mul_factor(&mut self, id: MonoId, v: VarId, exp: u32) -> MonoId {
        let product = self.monos[id as usize].mul(&Monomial::from_factors([(v, exp)]));
        self.intern(product)
    }

    /// Rough heap footprint of the arena's monomial storage in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.monos
            .iter()
            .map(|m| m.num_vars() * std::mem::size_of::<(VarId, u32)>())
            .sum::<usize>()
            + self.monos.capacity() * std::mem::size_of::<Monomial>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut arena = MonoArena::new();
        let a = arena.intern(Monomial::from_vars([v(1), v(2)]));
        let b = arena.intern(Monomial::from_vars([v(2), v(1)])); // canonical equal
        let c = arena.intern(Monomial::var(v(3)));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(&Monomial::var(v(3))), Some(c));
        assert_eq!(arena.get(&Monomial::var(v(9))), None);
    }

    #[test]
    fn postings_are_sorted_and_complete() {
        let mut arena = MonoArena::new();
        let a = arena.intern(Monomial::from_vars([v(1), v(2)]));
        let b = arena.intern(Monomial::from_vars([v(1), v(3)]));
        assert_eq!(arena.postings_of(v(1)), &[a, b]);
        assert_eq!(arena.postings_of(v(3)), &[b]);
        assert!(arena.postings_of(v(9)).is_empty());
    }

    #[test]
    fn remainder_is_memoised_and_correct() {
        let mut arena = MonoArena::new();
        let m = arena.intern(Monomial::from_factors([(v(1), 2), (v(2), 1)]));
        let (rem, exp) = arena.remainder(m, v(1));
        assert_eq!(exp, 2);
        assert_eq!(arena.mono(rem), &Monomial::var(v(2)));
        // Second probe hits the memo (same ids back).
        assert_eq!(arena.remainder(m, v(1)), (rem, exp));
    }

    #[test]
    fn products_commute_and_memoise() {
        let mut arena = MonoArena::new();
        let a = arena.intern(Monomial::var(v(1)));
        let b = arena.intern(Monomial::from_factors([(v(1), 1), (v(2), 2)]));
        let ab = arena.mul(a, b);
        let ba = arena.mul(b, a);
        assert_eq!(ab, ba);
        assert_eq!(arena.mono(ab).exponent_of(v(1)), 2);
        assert_eq!(arena.mono(ab).exponent_of(v(2)), 2);
        let unit = arena.one();
        assert_eq!(arena.mul(a, unit), a);
    }

    #[test]
    fn mul_factor_reattaches_meta_variables() {
        let mut arena = MonoArena::new();
        let m = arena.intern(Monomial::var(v(8)));
        let merged = arena.mul_factor(m, v(20), 3);
        assert_eq!(arena.mono(merged).exponent_of(v(20)), 3);
        assert_eq!(arena.mono(merged).exponent_of(v(8)), 1);
    }

    #[test]
    fn var_space_densifies_in_first_occurrence_order() {
        let mut space = VarSpace::new();
        assert_eq!(space.local(v(9)), 0);
        assert_eq!(space.local(v(4)), 1);
        assert_eq!(space.local(v(9)), 0);
        assert_eq!(space.get(v(4)), Some(1));
        assert_eq!(space.get(v(7)), None);
        assert_eq!(space.var_of(0), v(9));
        assert_eq!(space.as_slice(), &[v(9), v(4)]);
        assert_eq!(space.len(), 2);
        assert!(!space.is_empty());
        assert_eq!(space.into_vars(), vec![v(9), v(4)]);
    }

    #[test]
    fn empty_arena_measures() {
        let arena = MonoArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
    }
}
