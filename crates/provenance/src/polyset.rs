//! Multisets of provenance polynomials.
//!
//! Provenance-aware query evaluation produces one polynomial per result
//! tuple; the abstraction algorithms operate on the whole multiset `𝒫`
//! (§2.1). Size and granularity lift point-wise:
//! `|𝒫|_M = Σ |P|_M` and `V(𝒫) = ∪ V(P)`.

use crate::coeff::Coefficient;
use crate::fxhash::FxHashSet;
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::var::VarId;

/// A multiset of polynomials (the provenance of a whole query result).
#[derive(Clone, Default)]
pub struct PolySet<C> {
    polys: Vec<Polynomial<C>>,
}

impl<C: Coefficient> PolySet<C> {
    /// An empty set.
    pub fn new() -> Self {
        Self { polys: Vec::new() }
    }

    /// Wraps an existing vector of polynomials.
    pub fn from_vec(polys: Vec<Polynomial<C>>) -> Self {
        Self { polys }
    }

    /// Adds one polynomial.
    pub fn push(&mut self, p: Polynomial<C>) {
        self.polys.push(p);
    }

    /// Number of polynomials in the multiset.
    pub fn len(&self) -> usize {
        self.polys.len()
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.polys.is_empty()
    }

    /// Iterates over the polynomials.
    pub fn iter(&self) -> impl Iterator<Item = &Polynomial<C>> {
        self.polys.iter()
    }

    /// The polynomials as a slice.
    pub fn as_slice(&self) -> &[Polynomial<C>] {
        &self.polys
    }

    /// `|𝒫|_M`: total number of monomials across all polynomials.
    pub fn size_m(&self) -> usize {
        self.polys.iter().map(Polynomial::size_m).sum()
    }

    /// `V(𝒫)`: union of the variable sets.
    pub fn var_set(&self) -> FxHashSet<VarId> {
        let mut set = FxHashSet::default();
        for p in &self.polys {
            for m in p.iter().map(|(m, _)| m) {
                set.extend(m.vars());
            }
        }
        set
    }

    /// `|𝒫|_V`: number of distinct variables across all polynomials.
    pub fn size_v(&self) -> usize {
        self.var_set().len()
    }

    /// Applies a substitution point-wise: `𝒫↓S = { P↓S | P ∈ 𝒫 }`.
    pub fn map_vars(&self, mut map: impl FnMut(VarId) -> VarId) -> Self {
        Self {
            polys: self.polys.iter().map(|p| p.map_vars(&mut map)).collect(),
        }
    }

    /// Evaluates every polynomial under the same valuation.
    pub fn eval(&self, mut val: impl FnMut(VarId) -> C) -> Vec<C> {
        self.polys.iter().map(|p| p.eval(&mut val)).collect()
    }

    /// Whether any monomial anywhere contains variable `v`.
    pub fn contains_var(&self, v: VarId) -> bool {
        self.polys
            .iter()
            .any(|p| p.iter().any(|(m, _)| m.contains(v)))
    }

    /// Rough heap footprint of the stored provenance in bytes — the
    /// quantity behind the paper's "total size of over 8 GB" motivation.
    /// Counts the monomial factor arrays, coefficients and hash-map
    /// overhead; interned name storage lives in the [`crate::var::VarTable`].
    pub fn estimated_bytes(&self) -> usize {
        let mut bytes = self.polys.capacity() * std::mem::size_of::<Polynomial<C>>();
        for p in &self.polys {
            for (m, _) in p.iter() {
                // Factor array + map entry (key, value, control byte).
                bytes += m.num_vars() * std::mem::size_of::<(u32, u32)>()
                    + std::mem::size_of::<Monomial>()
                    + std::mem::size_of::<C>()
                    + 8;
            }
        }
        bytes
    }

    /// All monomials (with the index of their polynomial), useful for
    /// building inverted indexes.
    pub fn monomials(&self) -> impl Iterator<Item = (usize, &Monomial, &C)> {
        self.polys
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.iter().map(move |(m, c)| (i, m, c)))
    }
}

impl<C: Coefficient> FromIterator<Polynomial<C>> for PolySet<C> {
    fn from_iter<T: IntoIterator<Item = Polynomial<C>>>(iter: T) -> Self {
        Self {
            polys: iter.into_iter().collect(),
        }
    }
}

impl<C: Coefficient> std::fmt::Debug for PolySet<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.polys.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn poly(terms: &[(&[u32], f64)]) -> Polynomial<f64> {
        Polynomial::from_terms(
            terms
                .iter()
                .map(|(vs, c)| (Monomial::from_vars(vs.iter().map(|&i| v(i))), *c)),
        )
    }

    #[test]
    fn sizes_lift_pointwise() {
        let set = PolySet::from_vec(vec![
            poly(&[(&[1, 2], 1.0), (&[1, 3], 2.0)]),
            poly(&[(&[2, 4], 3.0)]),
        ]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.size_m(), 3);
        assert_eq!(set.size_v(), 4); // {1,2,3,4}
    }

    #[test]
    fn map_vars_applies_to_every_polynomial() {
        let set = PolySet::from_vec(vec![poly(&[(&[1], 1.0)]), poly(&[(&[2], 2.0)])]);
        let mapped = set.map_vars(|_| v(7));
        assert_eq!(mapped.size_v(), 1);
        assert!(mapped.contains_var(v(7)));
        assert!(!mapped.contains_var(v(1)));
    }

    #[test]
    fn eval_returns_one_value_per_polynomial() {
        let set = PolySet::from_vec(vec![poly(&[(&[1], 2.0)]), poly(&[(&[1], 3.0)])]);
        let vals = set.eval(|_| 10.0);
        assert_eq!(vals, vec![20.0, 30.0]);
    }

    #[test]
    fn empty_set_measures() {
        let set: PolySet<f64> = PolySet::new();
        assert!(set.is_empty());
        assert_eq!(set.size_m(), 0);
        assert_eq!(set.size_v(), 0);
    }

    #[test]
    fn estimated_bytes_tracks_size() {
        let small = PolySet::from_vec(vec![poly(&[(&[1], 1.0)])]);
        let big = PolySet::from_vec(vec![
            poly(&[(&[1, 2], 1.0), (&[1, 3], 2.0), (&[2, 3], 3.0)]),
            poly(&[(&[2, 4], 3.0), (&[1, 4], 4.0)]),
        ]);
        assert!(big.estimated_bytes() > small.estimated_bytes());
        assert!(small.estimated_bytes() > 0);
    }

    #[test]
    fn monomials_iterates_with_poly_index() {
        let set = PolySet::from_vec(vec![
            poly(&[(&[1], 1.0)]),
            poly(&[(&[2], 1.0), (&[3], 1.0)]),
        ]);
        let mut counts = [0usize; 2];
        for (i, _, _) in set.monomials() {
            counts[i] += 1;
        }
        assert_eq!(counts, [1, 2]);
    }
}
