//! Runtime-dispatched SIMD evaluation kernels over the frozen arena.
//!
//! [`CompiledPolySet`] is already struct-of-arrays (coefficient,
//! exponent-run and variable-index columns with dense lookup-table
//! valuations) — exactly the layout vector units want. This module adds
//! the last step: **scenario-major lane batching**. Instead of walking
//! the columns once per scenario, [`CompiledPolySet::eval_block`]
//! evaluates [`LANES`] scenarios per pass:
//!
//! 1. the per-scenario valuation tables are packed (transposed) into one
//!    `[vars × LANES]` *block table* — `block[v·LANES + l]` is the value
//!    of local variable `v` in lane (scenario) `l`, so a variable's
//!    values for all lanes sit in one contiguous, vector-width load;
//! 2. the per-monomial power/multiply/accumulate loop is fused over the
//!    exponent-run columns: a monomial's contribution to all lanes is
//!    computed in one sweep (small exponents unrolled — 1/2/3 —
//!    exponentiation-by-squaring above, mirroring
//!    [`pow_f64`](crate::coeff::pow_f64) per lane);
//! 3. each polynomial's lane accumulator is scattered back into the
//!    per-scenario result rows.
//!
//! Two kernels implement that loop: a portable `generic` one written
//! over `[f64; LANES]` arrays (autovectorizes on any target and is the
//! guaranteed-correct fallback) and an `avx2` one over `__m256d`
//! intrinsics (`std::arch::x86_64`), guarded by
//! `is_x86_feature_detected!` so **one binary runs correctly on machines
//! with and without AVX2**. The choice sits behind the [`Kernel`] enum —
//! resolved once per batch, observable (e.g. through
//! `Session::kernel_info`) and forceable, both programmatically and via
//! the `PROVABS_FORCE_GENERIC_KERNEL=1` environment knob CI uses to keep
//! the fallback path green on any runner.
//!
//! # Equivalence contract
//!
//! Lane batching does **not** reorder floating-point sums: each lane
//! accumulates its scenario's monomials in exactly the order
//! [`CompiledPolySet::eval_into`] visits them, the kernels use plain IEEE
//! multiplies and adds (deliberately no FMA — fusing would change
//! rounding), and every engine raises variables through the one shared
//! multiply tree of [`pow_f64`](crate::coeff::pow_f64). Every kernel is
//! therefore **bit-for-bit identical** to the scalar engine — a stronger
//! guarantee than the documented 1e-12 cross-currency tolerance, and the
//! `simd_equivalence` suite asserts the bits.

use crate::compiled::{CompiledPolySet, CompiledView};
use crate::valuation::Valuation;

mod generic;

#[cfg(target_arch = "x86_64")]
mod avx2;

/// Scenarios evaluated per lane-batched pass: four `f64`s, one AVX2
/// `__m256d` register (the generic kernel uses the same width so both
/// kernels chunk batches identically).
pub const LANES: usize = 4;

/// The environment knob honoured by the dispatcher: when set (to
/// anything but `0` or the empty string), [`Kernel::resolve`] never
/// selects the AVX2 path — CI uses it to exercise the portable fallback
/// on runners that do have AVX2.
pub const FORCE_GENERIC_ENV: &str = "PROVABS_FORCE_GENERIC_KERNEL";

/// Which evaluation kernel a batch runs on.
///
/// The default, [`Kernel::Auto`], resolves once per batch to the fastest
/// available kernel ([`Kernel::Avx2`] where the CPU supports it,
/// [`Kernel::Generic`] otherwise). The other variants force a specific
/// engine — how the ablation benches and the equivalence suites pin each
/// path down.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Kernel {
    /// Resolve at runtime: AVX2 where detected (and not suppressed by
    /// [`FORCE_GENERIC_ENV`]), the generic lane kernel otherwise.
    #[default]
    Auto,
    /// The one-scenario-at-a-time columnar sweep
    /// ([`CompiledPolySet::eval_into`]) — the PR 5 baseline the ablation
    /// benches compare against.
    Scalar,
    /// The portable lane kernel over `[f64; LANES]` arrays — correct on
    /// every target, autovectorized where the compiler can.
    Generic,
    /// The `std::arch::x86_64` AVX2 kernel. Forcing it on a machine
    /// without AVX2 resolves to [`Kernel::Generic`] instead (runtime
    /// dispatch never executes an unsupported instruction);
    /// [`Kernel::is_available`] tells the two cases apart.
    Avx2,
}

/// Whether this process' CPU supports the AVX2 kernel.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether [`FORCE_GENERIC_ENV`] is set (to anything but `0`/empty).
pub fn generic_forced_by_env() -> bool {
    matches!(std::env::var(FORCE_GENERIC_ENV), Ok(v) if !v.is_empty() && v != "0")
}

impl Kernel {
    /// Resolves this request to the kernel a batch will actually run on
    /// — the runtime-dispatch step, performed once per batch:
    ///
    /// * [`Kernel::Auto`] → [`Kernel::Avx2`] where
    ///   [`avx2_available`] and not [`generic_forced_by_env`],
    ///   else [`Kernel::Generic`];
    /// * [`Kernel::Avx2`] → itself where available, demoted to
    ///   [`Kernel::Generic`] otherwise (or when the env knob is set);
    /// * [`Kernel::Scalar`] / [`Kernel::Generic`] → themselves (the
    ///   scalar reference is never overridden — it is the baseline).
    pub fn resolve(self) -> Kernel {
        match self {
            Kernel::Scalar => Kernel::Scalar,
            Kernel::Generic => Kernel::Generic,
            Kernel::Auto | Kernel::Avx2 => {
                if avx2_available() && !generic_forced_by_env() {
                    Kernel::Avx2
                } else {
                    Kernel::Generic
                }
            }
        }
    }

    /// Whether this kernel can run as named on this machine (`Auto` is
    /// always available — it is the request to pick one that is).
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Avx2 => avx2_available(),
            Kernel::Auto | Kernel::Scalar | Kernel::Generic => true,
        }
    }

    /// A short stable name for logs and bench ids.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Auto => "auto",
            Kernel::Scalar => "scalar",
            Kernel::Generic => "generic",
            Kernel::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The kernel-dispatch observability snapshot — sibling of the session's
/// `intern_stats()` hook, returned by [`kernel_info`] (and re-exported as
/// `Session::kernel_info`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelInfo {
    /// The kernel the options asked for (possibly [`Kernel::Auto`]).
    pub requested: Kernel,
    /// The kernel batches actually run on — [`Kernel::resolve`] of
    /// `requested`; never `Auto`.
    pub selected: Kernel,
    /// Whether this CPU supports the AVX2 kernel at all.
    pub avx2_available: bool,
    /// Whether [`FORCE_GENERIC_ENV`] suppressed the AVX2 path.
    pub forced_generic_env: bool,
    /// Scenarios per lane-batched pass ([`LANES`]; `1` for the scalar
    /// kernel).
    pub lanes: usize,
}

/// Resolves `requested` and reports the full dispatch picture.
pub fn kernel_info(requested: Kernel) -> KernelInfo {
    let selected = requested.resolve();
    KernelInfo {
        requested,
        selected,
        avx2_available: avx2_available(),
        forced_generic_env: generic_forced_by_env(),
        lanes: if selected == Kernel::Scalar { 1 } else { LANES },
    }
}

impl CompiledPolySet<f64> {
    /// The multi-scenario evaluation entry point: evaluates the whole
    /// batch on the requested [`Kernel`] — `result[s][p]` is the value
    /// of polynomial `p` under valuation `s`, bit-for-bit identical to
    /// [`eval_all`](Self::eval_all) on every kernel (see the
    /// [module docs](self) for why).
    ///
    /// The kernel is resolved once; full [`LANES`]-sized blocks run on
    /// the lane kernel off one packed `[vars × LANES]` block table, the
    /// ragged tail (when the batch is not a multiple of [`LANES`]) runs
    /// on the scalar sweep. All scratch buffers are reused across blocks,
    /// so the loop performs no per-scenario allocation beyond the result
    /// rows themselves.
    pub fn eval_block(&self, vals: &[Valuation<f64>], kernel: Kernel) -> Vec<Vec<f64>> {
        self.view().eval_block(vals, kernel)
    }

    /// [`eval_block`](Self::eval_block) appending into a caller-owned
    /// vector of rows — the executor's chunk workers use this to fill
    /// their output slices without intermediate collections.
    pub fn eval_block_into(
        &self,
        vals: &[Valuation<f64>],
        kernel: Kernel,
        out: &mut Vec<Vec<f64>>,
    ) {
        self.view().eval_block_into(vals, kernel, out)
    }
}

impl CompiledView<'_, f64> {
    /// [`CompiledPolySet::eval_block`] off borrowed columns — identical
    /// semantics, and the entry point a memory-mapped artifact's view
    /// evaluates through without an owned `CompiledPolySet` existing.
    pub fn eval_block(&self, vals: &[Valuation<f64>], kernel: Kernel) -> Vec<Vec<f64>> {
        let mut out = Vec::with_capacity(vals.len());
        self.eval_block_into(vals, kernel, &mut out);
        out
    }

    /// [`eval_block`](Self::eval_block) appending into a caller-owned
    /// vector of rows.
    pub fn eval_block_into(
        &self,
        vals: &[Valuation<f64>],
        kernel: Kernel,
        out: &mut Vec<Vec<f64>>,
    ) {
        let kernel = kernel.resolve();
        out.reserve(vals.len());
        let polys = self.num_polys();
        let full = if kernel == Kernel::Scalar {
            0 // everything below goes through the scalar tail loop
        } else {
            vals.len() - vals.len() % LANES
        };
        if full > 0 {
            let mut block = vec![0.0f64; self.num_vars() * LANES];
            let mut lanes_out = vec![0.0f64; polys * LANES];
            for chunk in vals[..full].chunks_exact(LANES) {
                self.pack_block_table(chunk, &mut block);
                match kernel {
                    Kernel::Generic => generic::eval_block_table(*self, &block, &mut lanes_out),
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: `resolve()` returns `Avx2` only when
                    // `is_x86_feature_detected!("avx2")` holds on this CPU.
                    Kernel::Avx2 => unsafe {
                        avx2::eval_block_table(*self, &block, &mut lanes_out)
                    },
                    _ => unreachable!("resolve() returns a concrete lane kernel"),
                }
                // Scatter the poly-major lane results back into
                // scenario-major rows.
                for lane in 0..LANES {
                    out.push((0..polys).map(|p| lanes_out[p * LANES + lane]).collect());
                }
            }
        }
        // Ragged tail (and the whole batch for the scalar kernel): the
        // reference columnar sweep, one reused valuation table.
        let mut table = Vec::with_capacity(self.num_vars());
        for val in &vals[full..] {
            self.valuation_table_into(val, &mut table);
            let mut row = Vec::with_capacity(polys);
            self.eval_into(&table, &mut row);
            out.push(row);
        }
    }

    /// Packs (transposes) [`LANES`] scenarios' valuation tables into the
    /// block table: `block[v·LANES + l]` is local variable `v` under
    /// `vals[l]` — the gather that turns per-scenario lookups into
    /// contiguous vector loads.
    fn pack_block_table(&self, vals: &[Valuation<f64>], block: &mut [f64]) {
        debug_assert_eq!(vals.len(), LANES);
        debug_assert_eq!(block.len(), self.vars.len() * LANES);
        for (slot, &v) in block.chunks_exact_mut(LANES).zip(self.vars.iter()) {
            for (cell, val) in slot.iter_mut().zip(vals) {
                *cell = val.get(v);
            }
        }
    }
}

/// Raises one lane array to `e` with the same multiply tree as
/// [`pow_f64`](crate::coeff::pow_f64) in every lane — shared by the
/// generic kernel (the AVX2 kernel mirrors it over `__m256d`).
#[inline]
fn pow_lanes(base: [f64; LANES], e: u32) -> [f64; LANES] {
    let mul = |a: [f64; LANES], b: [f64; LANES]| {
        let mut r = [0.0; LANES];
        for l in 0..LANES {
            r[l] = a[l] * b[l];
        }
        r
    };
    match e {
        0 => [1.0; LANES],
        1 => base,
        2 => mul(base, base),
        3 => mul(mul(base, base), base),
        _ => {
            let mut e = e;
            let mut base = base;
            let mut acc = [1.0; LANES];
            while e > 1 {
                if e & 1 == 1 {
                    acc = mul(acc, base);
                }
                base = mul(base, base);
                e >>= 1;
            }
            mul(acc, base)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coeff::pow_f64;
    use crate::parse::parse_polyset;
    use crate::var::VarTable;

    #[test]
    fn resolve_never_returns_auto_and_respects_forcing() {
        for k in [Kernel::Auto, Kernel::Scalar, Kernel::Generic, Kernel::Avx2] {
            let r = k.resolve();
            assert_ne!(r, Kernel::Auto);
            assert!(r.is_available(), "resolve() picked an unrunnable kernel");
        }
        assert_eq!(Kernel::Scalar.resolve(), Kernel::Scalar);
        assert_eq!(Kernel::Generic.resolve(), Kernel::Generic);
        if avx2_available() && !generic_forced_by_env() {
            assert_eq!(Kernel::Auto.resolve(), Kernel::Avx2);
            assert_eq!(Kernel::Avx2.resolve(), Kernel::Avx2);
        } else {
            assert_eq!(Kernel::Auto.resolve(), Kernel::Generic);
            assert_eq!(Kernel::Avx2.resolve(), Kernel::Generic);
        }
    }

    #[test]
    fn kernel_info_reports_the_dispatch() {
        let info = kernel_info(Kernel::Auto);
        assert_eq!(info.requested, Kernel::Auto);
        assert_eq!(info.selected, Kernel::Auto.resolve());
        assert_eq!(info.avx2_available, avx2_available());
        assert_eq!(info.lanes, LANES);
        let scalar = kernel_info(Kernel::Scalar);
        assert_eq!(scalar.selected, Kernel::Scalar);
        assert_eq!(scalar.lanes, 1);
        assert_eq!(format!("{}", Kernel::Avx2), "avx2");
    }

    #[test]
    fn pow_lanes_matches_pow_f64_per_lane() {
        let base = [1.5, -0.75, 0.0, 1e3];
        for e in 0..12 {
            let lanes = pow_lanes(base, e);
            for l in 0..LANES {
                assert_eq!(
                    lanes[l].to_bits(),
                    pow_f64(base[l], e).to_bits(),
                    "lane {l} exp {e}"
                );
            }
        }
    }

    #[test]
    fn eval_block_matches_eval_all_on_every_kernel() {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1\n75.9·y1·m1 + 72.5·y1·m3\n42·v·m1",
            &mut vars,
        )
        .expect("parse");
        let compiled = CompiledPolySet::compile(&polys);
        let ids: Vec<_> = vars.iter().map(|(id, _)| id).collect();
        // 7 scenarios: one full LANES block + a ragged tail of 3.
        let vals: Vec<Valuation<f64>> = (0..7)
            .map(|s| {
                let mut v = Valuation::neutral();
                for (i, &id) in ids.iter().enumerate() {
                    v.assign(id, 0.25 + (s * ids.len() + i) as f64 * 0.125);
                }
                v
            })
            .collect();
        let reference = compiled.eval_all(&vals);
        for kernel in [Kernel::Auto, Kernel::Scalar, Kernel::Generic, Kernel::Avx2] {
            let got = compiled.eval_block(&vals, kernel);
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(&reference) {
                for (a, b) in g.iter().zip(r) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{a} vs {b} on {kernel}");
                }
            }
        }
    }

    #[test]
    fn empty_batch_and_empty_polyset() {
        let compiled = CompiledPolySet::compile(&crate::polyset::PolySet::<f64>::new());
        assert!(compiled.eval_block(&[], Kernel::Auto).is_empty());
        let rows = compiled.eval_block(&[Valuation::neutral()], Kernel::Generic);
        assert_eq!(rows, vec![Vec::<f64>::new()]);
    }
}
