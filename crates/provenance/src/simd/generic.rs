//! The portable lane kernel: `[f64; LANES]` arrays, no intrinsics.
//!
//! This is the guaranteed-correct fallback every target can run (and the
//! path `PROVABS_FORCE_GENERIC_KERNEL=1` pins CI to). It is written as
//! straight-line lane arithmetic over fixed-size arrays so the compiler
//! can autovectorize it where the target allows; even fully scalarised
//! it must not regress the one-scenario-at-a-time sweep by more than a
//! few percent, because the block table amortises the valuation lookups
//! exactly the same way.

use super::{pow_lanes, LANES};
use crate::compiled::CompiledView;

/// Evaluates every polynomial over one packed `[vars × LANES]` block
/// table. `out[p·LANES + l]` receives polynomial `p`'s value in lane `l`
/// (poly-major; the caller scatters back to scenario-major rows).
///
/// Per lane this performs exactly the operation sequence of
/// [`CompiledView::eval_into`]: term = coefficient, multiplied by each
/// factor's power in column order, accumulated in monomial order — so
/// the results are bit-for-bit identical to the scalar engine.
pub(super) fn eval_block_table(c: CompiledView<'_, f64>, block: &[f64], out: &mut [f64]) {
    debug_assert!(block.len() >= c.vars.len() * LANES);
    debug_assert_eq!(out.len(), c.poly_ends.len() * LANES);
    let mut mono = 0usize;
    let mut fac = 0usize;
    for (p, &poly_end) in c.poly_ends.iter().enumerate() {
        let mut acc = [0.0f64; LANES];
        while mono < poly_end as usize {
            let mut term = [c.coeffs[mono]; LANES];
            let fac_end = c.mono_ends[mono] as usize;
            while fac < fac_end {
                let at = c.factor_vars[fac] as usize * LANES;
                let base: [f64; LANES] = block[at..at + LANES]
                    .try_into()
                    .expect("block table slot is LANES wide");
                let powed = pow_lanes(base, c.factor_exps[fac]);
                for l in 0..LANES {
                    term[l] *= powed[l];
                }
                fac += 1;
            }
            for l in 0..LANES {
                acc[l] += term[l];
            }
            mono += 1;
        }
        out[p * LANES..(p + 1) * LANES].copy_from_slice(&acc);
    }
}
