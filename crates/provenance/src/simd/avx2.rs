//! The AVX2 lane kernel: `__m256d` intrinsics from `std::arch::x86_64`.
//!
//! Four scenarios per register. The loop body mirrors [`super::generic`]
//! operation for operation — broadcast coefficient, multiply by each
//! factor's power in column order, accumulate in monomial order — using
//! only `vmulpd`/`vaddpd` (deliberately **no FMA**: a fused
//! multiply-add rounds once where the scalar engine rounds twice, which
//! would break the bit-for-bit contract of [`crate::simd`]).
//!
//! Compiled with `#[target_feature(enable = "avx2")]` and only ever
//! called after `is_x86_feature_detected!("avx2")` (see
//! [`Kernel::resolve`](super::Kernel::resolve)), so the binary stays
//! runnable on machines without AVX2.

use super::LANES;
use crate::compiled::CompiledView;
use std::arch::x86_64::{
    __m256d, _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd,
    _mm256_storeu_pd,
};

/// Evaluates every polynomial over one packed `[vars × LANES]` block
/// table; `out[p·LANES + l]` is polynomial `p`'s value in lane `l`.
/// Bit-for-bit identical to the scalar engine per lane (see the module
/// docs).
///
/// # Safety
///
/// The caller must have verified `is_x86_feature_detected!("avx2")` on
/// this CPU (the dispatcher's [`Kernel::resolve`](super::Kernel::resolve)
/// guarantees it).
#[target_feature(enable = "avx2")]
pub(super) unsafe fn eval_block_table(c: CompiledView<'_, f64>, block: &[f64], out: &mut [f64]) {
    debug_assert!(block.len() >= c.vars.len() * LANES);
    debug_assert_eq!(out.len(), c.poly_ends.len() * LANES);
    let mut mono = 0usize;
    let mut fac = 0usize;
    for (p, &poly_end) in c.poly_ends.iter().enumerate() {
        let mut acc = _mm256_setzero_pd();
        while mono < poly_end as usize {
            let mut term = _mm256_set1_pd(c.coeffs[mono]);
            let fac_end = c.mono_ends[mono] as usize;
            while fac < fac_end {
                let at = c.factor_vars[fac] as usize * LANES;
                // SAFETY: the block table holds LANES values per local
                // variable and `factor_vars` indexes into `c.vars`
                // (asserted above), so the load stays in bounds.
                let base = unsafe { _mm256_loadu_pd(block.as_ptr().add(at)) };
                term = _mm256_mul_pd(term, pow_pd(base, c.factor_exps[fac]));
                fac += 1;
            }
            acc = _mm256_add_pd(acc, term);
            mono += 1;
        }
        // SAFETY: `out` is `poly_ends.len() * LANES` long (asserted
        // above), so lane `p` owns a full LANES-wide slot.
        unsafe { _mm256_storeu_pd(out.as_mut_ptr().add(p * LANES), acc) };
    }
}

/// `base^e` per lane with the exact multiply tree of
/// [`pow_f64`](crate::coeff::pow_f64) — small exponents unrolled,
/// right-to-left binary exponentiation-by-squaring above.
#[target_feature(enable = "avx2")]
#[inline]
fn pow_pd(base: __m256d, e: u32) -> __m256d {
    match e {
        0 => _mm256_set1_pd(1.0),
        1 => base,
        2 => _mm256_mul_pd(base, base),
        3 => _mm256_mul_pd(_mm256_mul_pd(base, base), base),
        _ => {
            let mut e = e;
            let mut base = base;
            let mut acc = _mm256_set1_pd(1.0);
            while e > 1 {
                if e & 1 == 1 {
                    acc = _mm256_mul_pd(acc, base);
                }
                base = _mm256_mul_pd(base, base);
                e >>= 1;
            }
            _mm256_mul_pd(acc, base)
        }
    }
}
