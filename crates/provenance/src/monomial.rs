//! Monomials: products of variables with exponents.
//!
//! A monomial is a product of indeterminates; an indeterminate may appear
//! more than once, its multiplicity being the *exponent* (§2.1). Monomials
//! are stored as factor lists sorted by [`VarId`], which makes equality,
//! hashing and merging cheap and canonical.

use crate::var::VarId;
use std::fmt;

/// A canonical product of variables with positive exponents.
///
/// The empty monomial is the multiplicative unit `1` (a constant term).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Monomial {
    /// Sorted by variable id; exponents are ≥ 1.
    factors: Box<[(VarId, u32)]>,
}

impl Monomial {
    /// The unit monomial `1`.
    pub fn one() -> Self {
        Self {
            factors: Box::new([]),
        }
    }

    /// The monomial consisting of a single variable.
    pub fn var(v: VarId) -> Self {
        Self {
            factors: Box::new([(v, 1)]),
        }
    }

    /// Builds a monomial from an unsorted list of variables, merging
    /// repetitions into exponents.
    pub fn from_vars(vars: impl IntoIterator<Item = VarId>) -> Self {
        Self::from_factors(vars.into_iter().map(|v| (v, 1)))
    }

    /// Builds a monomial from `(variable, exponent)` pairs; pairs with the
    /// same variable are merged, zero exponents dropped.
    pub fn from_factors(factors: impl IntoIterator<Item = (VarId, u32)>) -> Self {
        let mut fs: Vec<(VarId, u32)> = factors.into_iter().filter(|&(_, e)| e > 0).collect();
        fs.sort_unstable_by_key(|&(v, _)| v);
        fs.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 += later.1;
                true
            } else {
                false
            }
        });
        Self {
            factors: fs.into_boxed_slice(),
        }
    }

    /// Whether this is the unit monomial.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Total degree: the sum of all exponents.
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|&(_, e)| e).sum()
    }

    /// Number of *distinct* variables.
    pub fn num_vars(&self) -> usize {
        self.factors.len()
    }

    /// Iterates over the distinct variables.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.factors.iter().map(|&(v, _)| v)
    }

    /// Iterates over `(variable, exponent)` factors in canonical order.
    pub fn factors(&self) -> impl Iterator<Item = (VarId, u32)> + '_ {
        self.factors.iter().copied()
    }

    /// Whether `v` occurs in this monomial.
    pub fn contains(&self, v: VarId) -> bool {
        self.factors.binary_search_by_key(&v, |&(w, _)| w).is_ok()
    }

    /// Exponent of `v` (0 if absent).
    pub fn exponent_of(&self, v: VarId) -> u32 {
        match self.factors.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => self.factors[i].1,
            Err(_) => 0,
        }
    }

    /// Product of two monomials (exponents add).
    pub fn mul(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.factors.len() + other.factors.len());
        let (mut i, mut j) = (0, 0);
        while i < self.factors.len() && j < other.factors.len() {
            let (a, ea) = self.factors[i];
            let (b, eb) = other.factors[j];
            match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    out.push((a, ea));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push((b, eb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((a, ea + eb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.factors[i..]);
        out.extend_from_slice(&other.factors[j..]);
        Self {
            factors: out.into_boxed_slice(),
        }
    }

    /// Removes variable `v`, returning the remainder monomial and the
    /// exponent `v` had (0 if absent, in which case the remainder is a
    /// clone of `self`).
    ///
    /// This is the `M_l` operation of the paper's efficient monomial-loss
    /// computation (§4.1).
    pub fn remove_var(&self, v: VarId) -> (Self, u32) {
        match self.factors.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => {
                let exp = self.factors[i].1;
                let mut fs = Vec::with_capacity(self.factors.len() - 1);
                fs.extend_from_slice(&self.factors[..i]);
                fs.extend_from_slice(&self.factors[i + 1..]);
                (
                    Self {
                        factors: fs.into_boxed_slice(),
                    },
                    exp,
                )
            }
            Err(_) => (self.clone(), 0),
        }
    }

    /// Substitutes every variable through `map`, re-canonicalising (merged
    /// variables add their exponents). This is the core of applying an
    /// abstraction `P↓S`.
    pub fn map_vars(&self, mut map: impl FnMut(VarId) -> VarId) -> Self {
        Self::from_factors(self.factors.iter().map(|&(v, e)| (map(v), e)))
    }
}

impl fmt::Debug for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return write!(f, "1");
        }
        for (i, (v, e)) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{:?}", v)?;
            if *e > 1 {
                write!(f, "^{}", e)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn unit_monomial() {
        let m = Monomial::one();
        assert!(m.is_one());
        assert_eq!(m.degree(), 0);
        assert_eq!(m.num_vars(), 0);
    }

    #[test]
    fn from_vars_merges_repeats() {
        let m = Monomial::from_vars([v(2), v(1), v(2)]);
        assert_eq!(m.exponent_of(v(2)), 2);
        assert_eq!(m.exponent_of(v(1)), 1);
        assert_eq!(m.degree(), 3);
        assert_eq!(m.num_vars(), 2);
    }

    #[test]
    fn from_factors_drops_zero_exponents() {
        let m = Monomial::from_factors([(v(1), 0), (v(2), 3)]);
        assert!(!m.contains(v(1)));
        assert_eq!(m.exponent_of(v(2)), 3);
    }

    #[test]
    fn canonical_equality() {
        let a = Monomial::from_vars([v(1), v(2)]);
        let b = Monomial::from_vars([v(2), v(1)]);
        assert_eq!(a, b);
    }

    #[test]
    fn mul_adds_exponents() {
        let a = Monomial::from_vars([v(1), v(2)]);
        let b = Monomial::from_vars([v(2), v(3)]);
        let p = a.mul(&b);
        assert_eq!(p.exponent_of(v(1)), 1);
        assert_eq!(p.exponent_of(v(2)), 2);
        assert_eq!(p.exponent_of(v(3)), 1);
    }

    #[test]
    fn mul_with_unit_is_identity() {
        let a = Monomial::from_vars([v(5)]);
        assert_eq!(a.mul(&Monomial::one()), a);
        assert_eq!(Monomial::one().mul(&a), a);
    }

    #[test]
    fn remove_var_present_and_absent() {
        let m = Monomial::from_factors([(v(1), 2), (v(2), 1)]);
        let (rem, exp) = m.remove_var(v(1));
        assert_eq!(exp, 2);
        assert_eq!(rem, Monomial::var(v(2)));
        let (rem2, exp2) = m.remove_var(v(9));
        assert_eq!(exp2, 0);
        assert_eq!(rem2, m);
    }

    #[test]
    fn map_vars_merges_collisions() {
        // m1·m3 with both mapped to q1 becomes q1^2.
        let m = Monomial::from_vars([v(1), v(3)]);
        let mapped = m.map_vars(|_| v(10));
        assert_eq!(mapped.exponent_of(v(10)), 2);
        assert_eq!(mapped.num_vars(), 1);
    }

    #[test]
    fn ordering_is_total_and_canonical() {
        let a = Monomial::from_vars([v(1)]);
        let b = Monomial::from_vars([v(2)]);
        assert!(a < b);
        assert!(Monomial::one() < a);
    }
}
