//! Provenance polynomials: sums of coefficient-weighted monomials.
//!
//! Implements the measures of §2.1: the *size* `|P|_M` (number of
//! monomials, written [`Polynomial::size_m`]) and the *granularity*
//! `|P|_V` (number of distinct variables, [`Polynomial::size_v`]), and the
//! abstraction application `P↓S` via [`Polynomial::map_vars`] (distinct
//! monomials that become identical are merged, their coefficients added).

use crate::coeff::Coefficient;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::monomial::Monomial;
use crate::var::VarId;
use std::fmt;

/// A polynomial over interned variables with coefficients in `C`.
///
/// Zero-coefficient terms are never stored, so `size_m` counts exactly the
/// monomials with a non-zero coefficient.
#[derive(Clone)]
pub struct Polynomial<C> {
    terms: FxHashMap<Monomial, C>,
}

impl<C> Default for Polynomial<C> {
    fn default() -> Self {
        Self {
            terms: FxHashMap::default(),
        }
    }
}

impl<C: Coefficient> Polynomial<C> {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self::default()
    }

    /// The constant polynomial `c`.
    pub fn constant(c: C) -> Self {
        let mut p = Self::zero();
        p.add_term(Monomial::one(), c);
        p
    }

    /// The polynomial consisting of the single variable `v`.
    pub fn variable(v: VarId) -> Self {
        let mut p = Self::zero();
        p.add_term(Monomial::var(v), C::one());
        p
    }

    /// Builds a polynomial from terms, merging duplicate monomials.
    pub fn from_terms(terms: impl IntoIterator<Item = (Monomial, C)>) -> Self {
        let mut p = Self::zero();
        for (m, c) in terms {
            p.add_term(m, c);
        }
        p
    }

    /// Adds `coeff · mono` to the polynomial, merging with an existing term
    /// and dropping it if the sum vanishes (the shared
    /// [`crate::intern::accumulate`] rule).
    pub fn add_term(&mut self, mono: Monomial, coeff: C) {
        crate::intern::accumulate(&mut self.terms, mono, coeff);
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// `|P|_M`: the number of monomials.
    pub fn size_m(&self) -> usize {
        self.terms.len()
    }

    /// `V(P)`: the set of distinct variables.
    pub fn var_set(&self) -> FxHashSet<VarId> {
        let mut set = FxHashSet::default();
        for m in self.terms.keys() {
            set.extend(m.vars());
        }
        set
    }

    /// `|P|_V`: the number of distinct variables.
    pub fn size_v(&self) -> usize {
        self.var_set().len()
    }

    /// Iterates over `(monomial, coefficient)` terms in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &C)> {
        self.terms.iter()
    }

    /// Terms sorted by monomial — a canonical order for display and tests.
    pub fn sorted_terms(&self) -> Vec<(&Monomial, &C)> {
        let mut v: Vec<_> = self.terms.iter().collect();
        v.sort_by(|a, b| a.0.cmp(b.0));
        v
    }

    /// The coefficient of `mono` (zero if absent).
    pub fn coefficient(&self, mono: &Monomial) -> C {
        self.terms.get(mono).cloned().unwrap_or_else(C::zero)
    }

    /// Sum of the two polynomials.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        for (m, c) in other.terms.iter() {
            out.add_term(m.clone(), c.clone());
        }
        out
    }

    /// Product of the two polynomials (distributes over all term pairs).
    pub fn mul(&self, other: &Self) -> Self {
        let mut out = Self::zero();
        for (ma, ca) in self.terms.iter() {
            for (mb, cb) in other.terms.iter() {
                out.add_term(ma.mul(mb), ca.mul(cb));
            }
        }
        out
    }

    /// Scales every coefficient by `c`.
    pub fn scale(&self, c: &C) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        Self::from_terms(self.terms.iter().map(|(m, k)| (m.clone(), k.mul(c))))
    }

    /// Applies a variable substitution — the abstraction `P↓S` when `map`
    /// sends each leaf to its chosen ancestor. Monomials made identical are
    /// merged and their coefficients added (see Example 2 of the paper).
    pub fn map_vars(&self, mut map: impl FnMut(VarId) -> VarId) -> Self {
        Self::from_terms(
            self.terms
                .iter()
                .map(|(m, c)| (m.map_vars(&mut map), c.clone())),
        )
    }

    /// Evaluates the polynomial under a variable valuation.
    pub fn eval(&self, mut val: impl FnMut(VarId) -> C) -> C {
        let mut acc = C::zero();
        for (m, c) in self.terms.iter() {
            let mut term = c.clone();
            for (v, e) in m.factors() {
                term = term.mul(&val(v).pow(e));
            }
            acc = acc.add(&term);
        }
        acc
    }

    /// Sum of all coefficients — equals `eval` at the all-ones valuation
    /// and is invariant under `map_vars` (merging only adds coefficients).
    pub fn coefficient_mass(&self) -> C {
        let mut acc = C::zero();
        for c in self.terms.values() {
            acc = acc.add(c);
        }
        acc
    }

    /// The maximal number of distinct variables in any single monomial
    /// (used by compatibility checks).
    pub fn max_monomial_width(&self) -> usize {
        self.terms.keys().map(|m| m.num_vars()).max().unwrap_or(0)
    }
}

impl<C: Coefficient> FromIterator<(Monomial, C)> for Polynomial<C> {
    fn from_iter<T: IntoIterator<Item = (Monomial, C)>>(iter: T) -> Self {
        Self::from_terms(iter)
    }
}

impl<C: Coefficient> PartialEq for Polynomial<C> {
    fn eq(&self, other: &Self) -> bool {
        if self.terms.len() != other.terms.len() {
            return false;
        }
        self.terms
            .iter()
            .all(|(m, c)| other.terms.get(m).is_some_and(|d| d == c))
    }
}

impl<C: Coefficient> fmt::Debug for Polynomial<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, (m, c)) in self.sorted_terms().into_iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}", c)?;
            if !m.is_one() {
                write!(f, "·{:?}", m)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn term(vars: &[u32], c: f64) -> (Monomial, f64) {
        (Monomial::from_vars(vars.iter().map(|&i| v(i))), c)
    }

    #[test]
    fn zero_polynomial() {
        let p: Polynomial<f64> = Polynomial::zero();
        assert!(p.is_zero());
        assert_eq!(p.size_m(), 0);
        assert_eq!(p.size_v(), 0);
    }

    #[test]
    fn add_term_merges_and_cancels() {
        let mut p = Polynomial::zero();
        p.add_term(Monomial::var(v(1)), 2.0);
        p.add_term(Monomial::var(v(1)), 3.0);
        assert_eq!(p.size_m(), 1);
        assert_eq!(p.coefficient(&Monomial::var(v(1))), 5.0);
        p.add_term(Monomial::var(v(1)), -5.0);
        assert!(p.is_zero());
    }

    #[test]
    fn zero_coefficient_terms_are_not_stored() {
        let p = Polynomial::from_terms([term(&[1], 0.0)]);
        assert!(p.is_zero());
    }

    #[test]
    fn size_measures_match_paper_notation() {
        // P = 2·x·y + 3·x·z has |P|_M = 2 and |P|_V = 3.
        let p = Polynomial::from_terms([term(&[1, 2], 2.0), term(&[1, 3], 3.0)]);
        assert_eq!(p.size_m(), 2);
        assert_eq!(p.size_v(), 3);
    }

    #[test]
    fn map_vars_merges_monomials_example_2() {
        // 220.8·p1·m1 + 240·p1·m3  --(m1,m3 → q1)-->  460.8·p1·q1.
        let (p1, m1, m3, q1) = (v(0), v(1), v(3), v(10));
        let p = Polynomial::from_terms([
            (Monomial::from_vars([p1, m1]), 220.8),
            (Monomial::from_vars([p1, m3]), 240.0),
        ]);
        let abstracted = p.map_vars(|x| if x == m1 || x == m3 { q1 } else { x });
        assert_eq!(abstracted.size_m(), 1);
        let got = abstracted.coefficient(&Monomial::from_vars([p1, q1]));
        assert!((got - 460.8).abs() < 1e-9);
    }

    #[test]
    fn coefficient_mass_is_invariant_under_map_vars() {
        let p = Polynomial::from_terms([term(&[1, 2], 2.5), term(&[1, 3], 4.5), term(&[4], 1.0)]);
        let mapped = p.map_vars(|x| if x == v(2) || x == v(3) { v(9) } else { x });
        assert!((p.coefficient_mass() - mapped.coefficient_mass()).abs() < 1e-12);
    }

    #[test]
    fn mul_distributes() {
        // (x + 2)(y + 3) = xy + 3x + 2y + 6
        let x = Polynomial::from_terms([term(&[1], 1.0), (Monomial::one(), 2.0)]);
        let y = Polynomial::from_terms([term(&[2], 1.0), (Monomial::one(), 3.0)]);
        let p = x.mul(&y);
        assert_eq!(p.size_m(), 4);
        assert_eq!(p.coefficient(&Monomial::from_vars([v(1), v(2)])), 1.0);
        assert_eq!(p.coefficient(&Monomial::one()), 6.0);
        assert_eq!(p.coefficient(&Monomial::var(v(1))), 3.0);
        assert_eq!(p.coefficient(&Monomial::var(v(2))), 2.0);
    }

    #[test]
    fn eval_with_exponents() {
        // 2·x²·y at x=3, y=5 → 90.
        let p = Polynomial::from_terms([(Monomial::from_factors([(v(1), 2), (v(2), 1)]), 2.0)]);
        let r = p.eval(|x| if x == v(1) { 3.0 } else { 5.0 });
        assert_eq!(r, 90.0);
    }

    #[test]
    fn eval_at_ones_equals_mass() {
        let p = Polynomial::from_terms([term(&[1, 2], 2.0), term(&[3], 0.5)]);
        assert_eq!(p.eval(|_| 1.0), p.coefficient_mass());
    }

    #[test]
    fn equality_is_structural() {
        let a = Polynomial::from_terms([term(&[1], 1.0), term(&[2], 2.0)]);
        let b = Polynomial::from_terms([term(&[2], 2.0), term(&[1], 1.0)]);
        assert_eq!(a, b);
        let c = Polynomial::from_terms([term(&[1], 1.0)]);
        assert_ne!(a, c);
    }

    #[test]
    fn scale_by_zero_gives_zero() {
        let p = Polynomial::from_terms([term(&[1], 1.0)]);
        assert!(p.scale(&0.0).is_zero());
        assert_eq!(p.scale(&2.0).coefficient(&Monomial::var(v(1))), 2.0);
    }
}
