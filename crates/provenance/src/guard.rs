//! Guarded execution: deadlines, step budgets, cooperative cancellation
//! and panic containment for the long-running pipeline stages.
//!
//! The paper's setting is *interactive* hypothetical reasoning — an
//! analyst (or, soon, a server handling many of them) poses a bound and
//! expects an answer at interactive speed. That requires every
//! long-running loop in the pipeline to be *boundable*: a compression
//! run must honour a wall-clock deadline, a scenario batch must stop
//! soon after its request is cancelled, and one misbehaving worker must
//! not take the process down.
//!
//! The pieces:
//!
//! * [`Budget`] — a declarative limit: an optional wall-clock deadline
//!   and an optional step cap. [`Budget::unlimited`] is the identity.
//! * [`CancelToken`] — a shareable (`Arc<AtomicBool>`) cooperative
//!   cancellation flag; clone it, hand one side to the worker, trip the
//!   other from anywhere.
//! * [`Guard`] — a budget + an optional token, the thing loops carry.
//!   [`Guard::checkpoint`] hands out a [`Checkpoint`] probe whose
//!   [`Checkpoint::tick`] is cheap enough to call once per selection
//!   step: the cancel flag is a relaxed atomic load, and the
//!   `Instant::now()` call is amortised over [`TIME_CHECK_PERIOD`]
//!   ticks, so guarded loops stay within ~2 % of unguarded ones.
//! * [`Interrupt`] / [`Completion`] — the typed outcomes. Loops that
//!   can stop early *gracefully* (every greedy prefix is a sound, just
//!   larger, abstraction) report [`Completion::Interrupted`]; loops
//!   that cannot return partial answers surface the [`Interrupt`] as an
//!   error.
//! * [`run_isolated`] / [`panic_message`] — the shared panic-isolation
//!   seam: a worker closure runs under `catch_unwind` and a panic comes
//!   back as a rendered payload instead of aborting the process.
//!
//! # Ambient deadlines
//!
//! Setting `PROVABS_AMBIENT_DEADLINE_MS` gives every guarded run that
//! was *not* handed an explicit guard a fresh deadline of that many
//! milliseconds ([`Guard::ambient`]). CI runs the whole test suite
//! under a 1 ms ambient deadline to prove that expiry is always a typed
//! outcome — never a hang, never an abort. When the variable is unset
//! the ambient path costs one cached `OnceLock` read.

use std::panic::{catch_unwind, AssertUnwindSafe, UnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// How many [`Checkpoint::tick`]s pass between `Instant::now()` calls.
///
/// A clock read costs tens of nanoseconds — comparable to a whole
/// greedy selection step on small instances — so the probe only reads
/// it every this-many ticks. The worst-case deadline overshoot is
/// therefore `TIME_CHECK_PERIOD` steps, well under a millisecond on
/// every loop this crate guards.
pub const TIME_CHECK_PERIOD: u64 = 64;

/// A declarative execution limit: optional wall-clock deadline plus an
/// optional cap on the number of checkpointed steps.
///
/// A `Budget` is inert data; combine it with an optional
/// [`CancelToken`] into a [`Guard`] to enforce it.
#[derive(Clone, Copy, Debug, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    step_cap: Option<u64>,
}

impl Budget {
    /// No limits at all — guarded code runs exactly like unguarded code.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// A budget that expires `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Budget {
            deadline: Instant::now().checked_add(timeout),
            step_cap: None,
        }
    }

    /// A budget allowing at most `steps` checkpointed steps.
    ///
    /// Deterministic (no clock involved), which is what the anytime-
    /// prefix property tests are built on.
    pub fn with_steps(steps: u64) -> Self {
        Budget {
            deadline: None,
            step_cap: Some(steps),
        }
    }

    /// Adds a wall-clock deadline `timeout` from now to this budget.
    #[must_use]
    pub fn and_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Instant::now().checked_add(timeout);
        self
    }

    /// Adds a step cap to this budget.
    #[must_use]
    pub fn and_steps(mut self, steps: u64) -> Self {
        self.step_cap = Some(steps);
        self
    }

    /// True when neither a deadline nor a step cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.step_cap.is_none()
    }
}

/// A shareable cooperative-cancellation flag.
///
/// Clones share one underlying `Arc<AtomicBool>`: hand a clone to the
/// running side, keep one, and [`CancelToken::cancel`] from any thread.
/// Guarded loops observe the flag at their next [`Checkpoint::tick`]
/// (or, in the batch executor, at the next chunk claim).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Trips the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Why a guarded run stopped before finishing its work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interrupt {
    /// The wall-clock deadline in the [`Budget`] passed.
    DeadlineExpired,
    /// The step cap in the [`Budget`] was exhausted.
    StepCapExhausted,
    /// The attached [`CancelToken`] was tripped.
    Cancelled,
}

impl std::fmt::Display for Interrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interrupt::DeadlineExpired => write!(f, "deadline expired"),
            Interrupt::StepCapExhausted => write!(f, "step budget exhausted"),
            Interrupt::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// How a guarded compression run ended.
///
/// Compression loops are *anytime*: every prefix of the merge sequence
/// is a sound (just larger) abstraction, so an interrupted run still
/// returns its best-so-far state — tagged with this, never discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Completion {
    /// The run finished on its own terms.
    Complete,
    /// The guard tripped mid-run; the accompanying result is the valid
    /// state reached so far.
    Interrupted {
        /// Why the run was stopped.
        reason: Interrupt,
        /// Selection/merge steps completed before the interruption.
        steps: usize,
        /// The monomial count (`|𝒫'|_M`) the run had reached.
        size_reached: usize,
    },
}

impl Completion {
    /// True for [`Completion::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completion::Complete)
    }

    /// The more-interrupted of two completions: `Complete` is the
    /// identity, and any interruption wins over it. Used when a run has
    /// several guarded stages (e.g. online sampling around an inner
    /// solve) and must report the stage that tripped.
    #[must_use]
    pub fn merge(self, other: Completion) -> Completion {
        match self {
            Completion::Complete => other,
            interrupted => interrupted,
        }
    }
}

/// Live counters a [`Guard`] accumulates across the runs it supervises.
///
/// Shared (atomics) so the many loops one guard is threaded through can
/// all bump them without coordination; read back via
/// [`Guard::checkpoints_hit`] and surfaced as `Session::run_stats()`.
#[derive(Debug, Default)]
struct GuardCounters {
    checkpoints: AtomicU64,
}

/// An enforced execution limit: a [`Budget`] plus an optional
/// [`CancelToken`], carried by reference through every guarded loop.
///
/// `Guard` is cheap to construct per run and shareable across the
/// worker threads of one run (`&Guard` is `Sync`).
#[derive(Clone, Debug, Default)]
pub struct Guard {
    budget: Budget,
    cancel: Option<CancelToken>,
    counters: Arc<GuardCounters>,
}

impl Guard {
    /// A guard enforcing `budget`, with no cancellation token.
    pub fn new(budget: Budget) -> Self {
        Guard {
            budget,
            ..Guard::default()
        }
    }

    /// A guard with no limits — guarded code behaves exactly like
    /// unguarded code (the property suite asserts bit-identical output).
    pub fn unlimited() -> Self {
        Guard::default()
    }

    /// Attaches a cancellation token (a clone; trip either side).
    #[must_use]
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The guard for code that was not handed one explicitly: a fresh
    /// deadline of `PROVABS_AMBIENT_DEADLINE_MS` milliseconds when that
    /// variable is set, `None` (no guarding at all) otherwise.
    ///
    /// The variable is read once per process; when unset this is a
    /// cached load and the unguarded fast paths stay zero-cost.
    pub fn ambient() -> Option<Guard> {
        static AMBIENT_MS: OnceLock<Option<u64>> = OnceLock::new();
        let ms = AMBIENT_MS.get_or_init(|| {
            std::env::var("PROVABS_AMBIENT_DEADLINE_MS")
                .ok()
                .and_then(|v| v.parse().ok())
        });
        ms.map(|ms| Guard::new(Budget::with_deadline(Duration::from_millis(ms))))
    }

    /// True when this guard can never trip (no limits, no token).
    pub fn is_unlimited(&self) -> bool {
        self.budget.is_unlimited() && self.cancel.is_none()
    }

    /// The cancellation token attached to this guard, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// One immediate check, outside any loop: has the guard tripped?
    pub fn probe(&self) -> Result<(), Interrupt> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::DeadlineExpired);
            }
        }
        Ok(())
    }

    /// Starts a per-loop probe. Call [`Checkpoint::tick`] once per
    /// selection step; the expensive checks are amortised inside.
    pub fn checkpoint(&self) -> Checkpoint<'_> {
        Checkpoint {
            guard: self,
            ticks: 0,
            flushed: 0,
        }
    }

    /// Total [`Checkpoint::tick`] calls recorded against this guard
    /// (across all loops and clones sharing its counters).
    pub fn checkpoints_hit(&self) -> u64 {
        self.counters.checkpoints.load(Ordering::Relaxed)
    }
}

/// A per-loop probe handed out by [`Guard::checkpoint`].
///
/// [`Checkpoint::tick`] is designed to sit inside a hot selection loop:
/// a counter bump, a relaxed atomic load for the cancel flag, and a
/// clock read only every [`TIME_CHECK_PERIOD`] ticks.
#[derive(Debug)]
pub struct Checkpoint<'g> {
    guard: &'g Guard,
    ticks: u64,
    /// Ticks already folded into the guard's shared counters.
    flushed: u64,
}

impl Checkpoint<'_> {
    /// Counts one step and reports whether the guard has tripped.
    ///
    /// Step caps are exact (checked every tick, deterministically); the
    /// wall-clock deadline is checked every [`TIME_CHECK_PERIOD`] ticks.
    #[inline]
    pub fn tick(&mut self) -> Result<(), Interrupt> {
        self.ticks += 1;
        let guard = self.guard;
        if let Some(token) = &guard.cancel {
            if token.is_cancelled() {
                self.flush();
                return Err(Interrupt::Cancelled);
            }
        }
        if let Some(cap) = guard.budget.step_cap {
            if self.ticks > cap {
                self.flush();
                return Err(Interrupt::StepCapExhausted);
            }
        }
        if let Some(deadline) = guard.budget.deadline {
            if self.ticks.is_multiple_of(TIME_CHECK_PERIOD) && Instant::now() >= deadline {
                self.flush();
                return Err(Interrupt::DeadlineExpired);
            }
        }
        Ok(())
    }

    /// Steps ticked on this probe so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    fn flush(&mut self) {
        self.guard
            .counters
            .checkpoints
            .fetch_add(self.ticks - self.flushed, Ordering::Relaxed);
        self.flushed = self.ticks;
    }
}

impl Drop for Checkpoint<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Renders a `catch_unwind` payload into the human-readable message the
/// typed worker-panic errors carry.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` with panic isolation: a panic inside `f` is caught and
/// returned as its rendered message instead of unwinding further.
///
/// This is the single containment seam shared by the scenario batch
/// executor and the brute-force scoring threads — anything that fans
/// work out to threads funnels worker panics through here so they come
/// back as typed errors, never a process abort. The panic hook is left
/// in place, so the payload's origin still reaches stderr for
/// debugging.
pub fn run_isolated<T>(f: impl FnOnce() -> T + UnwindSafe) -> Result<T, String> {
    catch_unwind(f).map_err(|payload| panic_message(payload.as_ref()))
}

/// [`run_isolated`] for closures capturing `&mut` state.
///
/// The executor's chunk workers mutate their output slots in place; if
/// such a closure panics the slot contents are unspecified but the slot
/// itself stays structurally valid (it is plain `Vec<f64>` data), and
/// the caller discards the whole batch on error — which is what makes
/// asserting unwind safety sound here.
pub fn run_isolated_mut<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| panic_message(payload.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let guard = Guard::unlimited();
        assert!(guard.is_unlimited());
        assert!(guard.probe().is_ok());
        let mut cp = guard.checkpoint();
        for _ in 0..10_000 {
            assert!(cp.tick().is_ok());
        }
        assert_eq!(cp.ticks(), 10_000);
        drop(cp);
        assert_eq!(guard.checkpoints_hit(), 10_000);
    }

    #[test]
    fn step_cap_trips_exactly_after_the_cap() {
        let guard = Guard::new(Budget::with_steps(5));
        let mut cp = guard.checkpoint();
        for _ in 0..5 {
            assert_eq!(cp.tick(), Ok(()));
        }
        assert_eq!(cp.tick(), Err(Interrupt::StepCapExhausted));
    }

    #[test]
    fn deadline_trips_within_the_amortisation_window() {
        let guard = Guard::new(Budget::with_deadline(Duration::from_millis(0)));
        let mut cp = guard.checkpoint();
        let mut tripped = None;
        for i in 1..=2 * TIME_CHECK_PERIOD {
            if cp.tick().is_err() {
                tripped = Some(i);
                break;
            }
        }
        assert_eq!(
            tripped,
            Some(TIME_CHECK_PERIOD),
            "an already-expired deadline must trip at the first clock read"
        );
        // And probe() sees it immediately, without amortisation.
        assert_eq!(guard.probe(), Err(Interrupt::DeadlineExpired));
    }

    #[test]
    fn cancel_token_is_shared_across_clones_and_seen_first() {
        let token = CancelToken::new();
        // Cancellation outranks an exhausted step cap at the same tick.
        let guard = Guard::new(Budget::with_steps(0)).with_cancel(token.clone());
        token.cancel();
        assert!(token.is_cancelled());
        let mut cp = guard.checkpoint();
        assert_eq!(cp.tick(), Err(Interrupt::Cancelled));
        assert_eq!(guard.probe(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn completion_merge_keeps_the_interruption() {
        let int = Completion::Interrupted {
            reason: Interrupt::Cancelled,
            steps: 3,
            size_reached: 17,
        };
        assert_eq!(Completion::Complete.merge(int), int);
        assert_eq!(int.merge(Completion::Complete), int);
        assert!(Completion::Complete.is_complete());
        assert!(!int.is_complete());
    }

    #[test]
    fn isolation_renders_str_string_and_opaque_payloads() {
        assert_eq!(run_isolated(|| 7), Ok(7));
        assert_eq!(
            run_isolated(|| panic!("static message")),
            Err("static message".to_string())
        );
        let err = run_isolated(|| panic!("rendered {}", 42)).unwrap_err();
        assert_eq!(err, "rendered 42");
        let err = run_isolated(|| std::panic::panic_any(1234i32)).unwrap_err();
        assert_eq!(err, "non-string panic payload");
        let mut state = vec![1];
        let err = run_isolated_mut(|| {
            state.push(2);
            panic!("mid-mutation")
        })
        .unwrap_err();
        assert_eq!(err, "mid-mutation");
    }
}
