//! Coefficient rings for provenance polynomials.
//!
//! The paper treats coefficients as rational numbers (§2.1). In practice
//! aggregate provenance uses floating point, counting provenance uses
//! naturals, and tests want exact arithmetic; the [`Coefficient`] trait
//! abstracts over all three.

use std::fmt;

/// A commutative ring of polynomial coefficients.
///
/// `add`/`mul` must be commutative and associative with `zero`/`one` as the
/// respective identities. Implementations must keep `is_zero` consistent
/// with `zero()` so that polynomials can drop vanished terms.
pub trait Coefficient:
    Clone + PartialEq + fmt::Debug + fmt::Display + Send + Sync + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Commutative addition.
    fn add(&self, other: &Self) -> Self;
    /// Commutative multiplication.
    fn mul(&self, other: &Self) -> Self;
    /// Whether this value is (close enough to) the additive identity.
    fn is_zero(&self) -> bool;
    /// `self` raised to a small natural power (used when valuating
    /// exponentiated variables).
    fn pow(&self, exp: u32) -> Self {
        let mut acc = Self::one();
        for _ in 0..exp {
            acc = acc.mul(self);
        }
        acc
    }
    /// `n · self`, i.e. `self` added to itself `n` times (used when
    /// specialising `N[X]` polynomials whose coefficients are naturals).
    fn nat_scale(&self, n: u64) -> Self {
        let mut acc = Self::zero();
        for _ in 0..n {
            acc = acc.add(self);
        }
        acc
    }
}

impl Coefficient for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn pow(&self, exp: u32) -> Self {
        pow_f64(*self, exp)
    }
    fn nat_scale(&self, n: u64) -> Self {
        *self * n as f64
    }
}

/// `x^e` with the small exponents unrolled and right-to-left binary
/// exponentiation-by-squaring above.
///
/// This is the *one* multiply tree every `f64` evaluation path shares:
/// the hash-map evaluator ([`Coefficient::pow`] for `f64`), the scalar
/// columnar sweep ([`crate::compiled::CompiledPolySet::eval_into`]) and
/// the lane kernels ([`crate::simd`]) all raise variables through this
/// exact operation sequence (the kernels per lane). IEEE-754
/// multiplication is commutative and deterministic, so pinning the tree
/// makes every engine's results bit-for-bit comparable — which is what
/// the `simd_equivalence` suite asserts. (`f64::powi` makes no such
/// cross-compilation guarantee, which is why it is not used here.)
pub fn pow_f64(x: f64, e: u32) -> f64 {
    match e {
        0 => 1.0,
        1 => x,
        2 => x * x,
        3 => (x * x) * x,
        _ => {
            // Right-to-left binary: multiply `acc` by the squarings whose
            // bit is set. Starts from `acc = 1.0` — exact, `1.0 * y == y`.
            let mut e = e;
            let mut base = x;
            let mut acc = 1.0;
            while e > 1 {
                if e & 1 == 1 {
                    acc *= base;
                }
                base *= base;
                e >>= 1;
            }
            acc * base
        }
    }
}

impl Coefficient for i64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
}

impl Coefficient for u64 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
    fn nat_scale(&self, n: u64) -> Self {
        self * n
    }
}

/// Coefficients under `(min, ×)`: the carrier for MIN-aggregate
/// provenance (§2.1: "the plus operation in our polynomial corresponds to
/// the aggregate function"). Merging two identical monomials keeps the
/// smaller contribution; multiplication scales it. Factoring a
/// non-negative variable out of `min(a·x, b·x) = min(a, b)·x` is exactly
/// the simplification abstraction relies on, so abstraction remains sound
/// for non-negative valuations.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MinF64(pub f64);

impl fmt::Display for MinF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Coefficient for MinF64 {
    fn zero() -> Self {
        MinF64(f64::INFINITY)
    }
    fn one() -> Self {
        MinF64(1.0)
    }
    fn add(&self, other: &Self) -> Self {
        MinF64(self.0.min(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        MinF64(self.0 * other.0)
    }
    fn is_zero(&self) -> bool {
        self.0 == f64::INFINITY
    }
    fn pow(&self, exp: u32) -> Self {
        MinF64(f64::powi(self.0, exp as i32))
    }
    fn nat_scale(&self, n: u64) -> Self {
        if n == 0 {
            Self::zero()
        } else {
            *self
        }
    }
}

/// Coefficients under `(max, ×)`: the carrier for MAX-aggregate
/// provenance. See [`MinF64`] for the soundness condition.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MaxF64(pub f64);

impl fmt::Display for MaxF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Coefficient for MaxF64 {
    fn zero() -> Self {
        MaxF64(f64::NEG_INFINITY)
    }
    fn one() -> Self {
        MaxF64(1.0)
    }
    fn add(&self, other: &Self) -> Self {
        MaxF64(self.0.max(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        MaxF64(self.0 * other.0)
    }
    fn is_zero(&self) -> bool {
        self.0 == f64::NEG_INFINITY
    }
    fn pow(&self, exp: u32) -> Self {
        MaxF64(f64::powi(self.0, exp as i32))
    }
    fn nat_scale(&self, n: u64) -> Self {
        if n == 0 {
            Self::zero()
        } else {
            *self
        }
    }
}

/// An exact rational number with `i128` numerator and denominator.
///
/// Always kept in lowest terms with a positive denominator. Used by golden
/// tests that reproduce the paper's worked examples without float error.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs());
        let g = if g == 0 { 1 } else { g as i128 };
        Self {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// An integer as a rational.
    pub fn int(n: i128) -> Self {
        Self { num: n, den: 1 }
    }

    /// Parses a decimal literal such as `220.8` exactly.
    pub fn from_decimal_str(s: &str) -> Option<Self> {
        let (int_part, frac_part) = match s.split_once('.') {
            Some((i, f)) => (i, f),
            None => (s, ""),
        };
        let negative = int_part.starts_with('-');
        let int_digits = int_part.trim_start_matches(['-', '+']);
        if !int_digits.chars().all(|c| c.is_ascii_digit())
            || !frac_part.chars().all(|c| c.is_ascii_digit())
            || (int_digits.is_empty() && frac_part.is_empty())
        {
            return None;
        }
        let mut num: i128 = 0;
        for c in int_digits.chars().chain(frac_part.chars()) {
            num = num.checked_mul(10)?.checked_add((c as u8 - b'0') as i128)?;
        }
        let den = 10i128.checked_pow(frac_part.len() as u32)?;
        if negative {
            num = -num;
        }
        Some(Self::new(num, den))
    }

    /// Numerator (lowest terms, sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (lowest terms, positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Nearest `f64`.
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Coefficient for Rational {
    fn zero() -> Self {
        Self::int(0)
    }
    fn one() -> Self {
        Self::int(1)
    }
    fn add(&self, other: &Self) -> Self {
        let num = self
            .num
            .checked_mul(other.den)
            .and_then(|l| {
                other
                    .num
                    .checked_mul(self.den)
                    .and_then(|r| l.checked_add(r))
            })
            .expect("rational overflow in add");
        let den = self.den.checked_mul(other.den).expect("rational overflow");
        Self::new(num, den)
    }
    fn mul(&self, other: &Self) -> Self {
        let num = self.num.checked_mul(other.num).expect("rational overflow");
        let den = self.den.checked_mul(other.den).expect("rational overflow");
        Self::new(num, den)
    }
    fn is_zero(&self) -> bool {
        self.num == 0
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rational_normalises() {
        let r = Rational::new(6, -4);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 2);
    }

    #[test]
    fn rational_arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a.add(&b), Rational::new(5, 6));
        assert_eq!(a.mul(&b), Rational::new(1, 6));
        assert!(Rational::int(0).is_zero());
    }

    #[test]
    fn rational_from_decimal() {
        assert_eq!(
            Rational::from_decimal_str("220.8"),
            Some(Rational::new(2208, 10))
        );
        assert_eq!(
            Rational::from_decimal_str("-0.25"),
            Some(Rational::new(-1, 4))
        );
        assert_eq!(Rational::from_decimal_str("42"), Some(Rational::int(42)));
        assert_eq!(Rational::from_decimal_str("x"), None);
        assert_eq!(Rational::from_decimal_str("."), None);
    }

    #[test]
    fn pow_and_nat_scale_defaults() {
        let r = Rational::new(2, 1);
        assert_eq!(Coefficient::pow(&r, 3), Rational::int(8));
        assert_eq!(r.nat_scale(5), Rational::int(10));
        assert_eq!(Coefficient::pow(&2.0f64, 10), 1024.0);
        assert_eq!(3.0f64.nat_scale(4), 12.0);
    }

    #[test]
    fn zero_power_is_one() {
        assert_eq!(Coefficient::pow(&5.0f64, 0), 1.0);
        assert_eq!(Coefficient::pow(&Rational::int(7), 0), Rational::int(1));
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn min_coefficient_semantics() {
        let a = MinF64(3.0);
        let b = MinF64(5.0);
        assert_eq!(a.add(&b), MinF64(3.0));
        assert_eq!(a.mul(&b), MinF64(15.0));
        assert_eq!(a.add(&MinF64::zero()), a);
        assert_eq!(a.mul(&MinF64::one()), a);
        assert!(MinF64::zero().is_zero());
        assert_eq!(a.nat_scale(0), MinF64::zero());
        assert_eq!(a.nat_scale(7), a);
    }

    #[test]
    fn max_coefficient_semantics() {
        let a = MaxF64(3.0);
        let b = MaxF64(5.0);
        assert_eq!(a.add(&b), MaxF64(5.0));
        assert_eq!(a.mul(&b), MaxF64(15.0));
        assert_eq!(a.add(&MaxF64::zero()), a);
        assert!(MaxF64::zero().is_zero());
    }

    #[test]
    fn min_polynomials_merge_with_min() {
        // Two identical monomials under MIN-aggregation keep the smaller
        // coefficient — the aggregate analogue of coefficient addition.
        use crate::monomial::Monomial;
        use crate::polynomial::Polynomial;
        use crate::var::VarId;
        let m = Monomial::var(VarId(1));
        let p = Polynomial::from_terms([(m.clone(), MinF64(9.0)), (m.clone(), MinF64(4.0))]);
        assert_eq!(p.coefficient(&m), MinF64(4.0));
        assert_eq!(p.size_m(), 1);
    }
}
