//! Valuations: assignments of values to provenance variables.
//!
//! Hypothetical scenarios are expressed by valuating the variables of a
//! provenance expression (§1): e.g. "decrease the price of all plans by
//! 20 % in March" sets `m3 = 0.8` and leaves every other variable at the
//! neutral `1`. A [`Valuation`] is a sparse map with a default value for
//! unmentioned variables.

use crate::coeff::Coefficient;
use crate::fxhash::FxHashMap;
use crate::polynomial::Polynomial;
use crate::polyset::PolySet;
use crate::var::VarId;

/// A sparse variable assignment with a default for unmentioned variables.
#[derive(Clone, Debug)]
pub struct Valuation<C> {
    assignments: FxHashMap<VarId, C>,
    default: C,
}

impl<C: Coefficient> Default for Valuation<C> {
    /// The neutral valuation — same as [`Valuation::neutral`].
    fn default() -> Self {
        Self::neutral()
    }
}

impl<C: Coefficient> Valuation<C> {
    /// A valuation mapping every variable to `default`.
    pub fn with_default(default: C) -> Self {
        Self {
            assignments: FxHashMap::default(),
            default,
        }
    }

    /// The neutral valuation (everything `1`) — evaluating the provenance
    /// under it recovers the original query answer.
    pub fn neutral() -> Self {
        Self::with_default(C::one())
    }

    /// Sets `v` to `value`, returning `self` for chaining.
    #[must_use]
    pub fn set(mut self, v: VarId, value: C) -> Self {
        self.assignments.insert(v, value);
        self
    }

    /// Sets `v` to `value` in place.
    pub fn assign(&mut self, v: VarId, value: C) {
        self.assignments.insert(v, value);
    }

    /// The value of `v`.
    pub fn get(&self, v: VarId) -> C {
        self.assignments
            .get(&v)
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }

    /// Number of explicit (non-default) assignments.
    pub fn num_explicit(&self) -> usize {
        self.assignments.len()
    }

    /// The default value unmentioned variables take.
    pub fn default_value(&self) -> &C {
        &self.default
    }

    /// Evaluates one polynomial.
    pub fn eval(&self, p: &Polynomial<C>) -> C {
        p.eval(|v| self.get(v))
    }

    /// Evaluates a whole polynomial set, one result per polynomial.
    pub fn eval_set(&self, ps: &PolySet<C>) -> Vec<C> {
        ps.eval(|v| self.get(v))
    }

    /// Re-keys the explicit assignments through `map` — used to transport a
    /// valuation on meta-variables back and forth between the original and
    /// the abstracted variable space.
    pub fn map_keys(&self, mut map: impl FnMut(VarId) -> VarId) -> Self {
        let mut out = Self::with_default(self.default.clone());
        for (&v, c) in &self.assignments {
            out.assignments.insert(map(v), c.clone());
        }
        out
    }

    /// Iterates over explicit assignments.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &C)> {
        self.assignments.iter().map(|(&v, c)| (v, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn neutral_valuation_recovers_query_answer() {
        // 220.8·p1·m1 + 240·p1·m3 at all-ones = 460.8 (the plain revenue).
        let p = Polynomial::from_terms([
            (Monomial::from_vars([v(0), v(1)]), 220.8),
            (Monomial::from_vars([v(0), v(3)]), 240.0),
        ]);
        let val: Valuation<f64> = Valuation::neutral();
        assert!((val.eval(&p) - 460.8).abs() < 1e-9);
    }

    #[test]
    fn scenario_scales_only_targeted_variables() {
        // "20 % discount in March": m3 = 0.8.
        let (p1, m1, m3) = (v(0), v(1), v(3));
        let p = Polynomial::from_terms([
            (Monomial::from_vars([p1, m1]), 100.0),
            (Monomial::from_vars([p1, m3]), 200.0),
        ]);
        let val = Valuation::neutral().set(m3, 0.8);
        assert!((val.eval(&p) - (100.0 + 160.0)).abs() < 1e-9);
    }

    #[test]
    fn default_applies_to_unmentioned() {
        let val = Valuation::with_default(0.0).set(v(1), 5.0);
        assert_eq!(val.get(v(1)), 5.0);
        assert_eq!(val.get(v(2)), 0.0);
        assert_eq!(val.num_explicit(), 1);
    }

    #[test]
    fn eval_set_is_pointwise() {
        let ps = PolySet::from_vec(vec![
            Polynomial::from_terms([(Monomial::var(v(1)), 2.0)]),
            Polynomial::from_terms([(Monomial::var(v(2)), 3.0)]),
        ]);
        let val = Valuation::neutral().set(v(1), 10.0);
        assert_eq!(val.eval_set(&ps), vec![20.0, 3.0]);
    }

    #[test]
    fn map_keys_transports_assignments() {
        let val = Valuation::neutral().set(v(1), 7.0);
        let mapped = val.map_keys(|_| v(9));
        assert_eq!(mapped.get(v(9)), 7.0);
        assert_eq!(mapped.get(v(1)), 1.0);
    }
}
