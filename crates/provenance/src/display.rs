//! Human-readable rendering of polynomials with variable names.
//!
//! [`Polynomial`] itself has no access to names (variables are interned
//! ids); the functions here pair a polynomial with a [`VarTable`] to print
//! the paper's notation, e.g. `220.8·p1·m1 + 240·p1·m3`.

use crate::coeff::Coefficient;
use crate::monomial::Monomial;
use crate::polynomial::Polynomial;
use crate::polyset::PolySet;
use crate::var::VarTable;
use std::fmt::Write as _;

/// Renders a monomial as `p1·m1^2` using names from `vars`.
pub fn monomial_to_string(m: &Monomial, vars: &VarTable) -> String {
    if m.is_one() {
        return "1".to_string();
    }
    let mut out = String::new();
    for (i, (v, e)) in m.factors().enumerate() {
        if i > 0 {
            out.push('·');
        }
        out.push_str(vars.name(v));
        if e > 1 {
            let _ = write!(out, "^{}", e);
        }
    }
    out
}

/// Renders a polynomial in canonical (sorted-monomial) order, matching the
/// text format accepted by [`crate::parse::parse_polynomial`].
pub fn poly_to_string<C: Coefficient>(p: &Polynomial<C>, vars: &VarTable) -> String {
    if p.is_zero() {
        return "0".to_string();
    }
    let mut out = String::new();
    for (i, (m, c)) in p.sorted_terms().into_iter().enumerate() {
        if i > 0 {
            out.push_str(" + ");
        }
        if m.is_one() {
            let _ = write!(out, "{}", c);
        } else {
            let _ = write!(out, "{}·{}", c, monomial_to_string(m, vars));
        }
    }
    out
}

/// Renders a polynomial set, one polynomial per line.
pub fn polyset_to_string<C: Coefficient>(ps: &PolySet<C>, vars: &VarTable) -> String {
    let mut out = String::new();
    for p in ps.iter() {
        out.push_str(&poly_to_string(p, vars));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_notation() {
        let mut vars = VarTable::new();
        let p1 = vars.intern("p1");
        let m1 = vars.intern("m1");
        let m3 = vars.intern("m3");
        let p = Polynomial::from_terms([
            (Monomial::from_vars([p1, m1]), 220.8),
            (Monomial::from_vars([p1, m3]), 240.0),
        ]);
        let s = poly_to_string(&p, &vars);
        assert_eq!(s, "220.8·p1·m1 + 240·p1·m3");
    }

    #[test]
    fn renders_exponents_and_constants() {
        let mut vars = VarTable::new();
        let x = vars.intern("x");
        let p = Polynomial::from_terms([
            (Monomial::from_factors([(x, 2)]), 3.0),
            (Monomial::one(), 1.5),
        ]);
        let s = poly_to_string(&p, &vars);
        assert_eq!(s, "1.5 + 3·x^2");
    }

    #[test]
    fn zero_renders_as_zero() {
        let vars = VarTable::new();
        let p: Polynomial<f64> = Polynomial::zero();
        assert_eq!(poly_to_string(&p, &vars), "0");
    }

    #[test]
    fn polyset_one_line_per_polynomial() {
        let mut vars = VarTable::new();
        let x = vars.intern("x");
        let ps = PolySet::from_vec(vec![
            Polynomial::from_terms([(Monomial::var(x), 1.0)]),
            Polynomial::from_terms([(Monomial::var(x), 2.0)]),
        ]);
        assert_eq!(polyset_to_string(&ps, &vars), "1·x\n2·x\n");
    }
}
