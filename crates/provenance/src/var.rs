//! Provenance variables and interning.
//!
//! Provenance indeterminates (§2.1) are interned into dense `u32` ids so
//! that monomials and polynomials operate on machine words rather than
//! strings. Meta-variables created by abstraction trees are interned in the
//! same table — the paper deliberately "omits the distinction between
//! variables and meta-variables" (§2.2).

use crate::fxhash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// A dense identifier of an interned provenance variable.
///
/// `#[repr(transparent)]` over the raw `u32` is a load-bearing layout
/// guarantee: the persistence layer ([`crate::persist`]) reslices
/// `&[u32]` columns read straight out of a mapped artifact as
/// `&[VarId]` without copying.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as an index into dense per-variable arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An interning table mapping variable names to [`VarId`]s and back.
///
/// Names are unique: interning the same name twice yields the same id.
#[derive(Default, Clone)]
pub struct VarTable {
    names: Vec<Arc<str>>,
    index: FxHashMap<Arc<str>, VarId>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = VarId(u32::try_from(self.names.len()).expect("more than u32::MAX variables"));
        let name: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&name));
        self.index.insert(name, id);
        id
    }

    /// Interns every name in `names`, in order.
    pub fn intern_all<'a>(&mut self, names: impl IntoIterator<Item = &'a str>) -> Vec<VarId> {
        names.into_iter().map(|n| self.intern(n)).collect()
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    /// The name of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variable has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VarId(i as u32), n.as_ref()))
    }
}

impl fmt::Debug for VarTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VarTable")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut t = VarTable::new();
        let a = t.intern("m1");
        let b = t.intern("m1");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let mut t = VarTable::new();
        let a = t.intern("m1");
        let b = t.intern("m2");
        assert_ne!(a, b);
        assert_eq!(t.name(a), "m1");
        assert_eq!(t.name(b), "m2");
    }

    #[test]
    fn lookup_only_finds_interned() {
        let mut t = VarTable::new();
        let a = t.intern("p1");
        assert_eq!(t.lookup("p1"), Some(a));
        assert_eq!(t.lookup("p2"), None);
    }

    #[test]
    fn intern_all_preserves_order() {
        let mut t = VarTable::new();
        let ids = t.intern_all(["a", "b", "c"]);
        assert_eq!(ids.len(), 3);
        assert_eq!(t.name(ids[0]), "a");
        assert_eq!(t.name(ids[2]), "c");
    }

    #[test]
    fn iter_yields_all() {
        let mut t = VarTable::new();
        t.intern_all(["x", "y"]);
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(collected, ["x", "y"]);
    }
}
