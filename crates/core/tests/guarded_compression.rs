//! Property suite for guarded compression: the **anytime-prefix**
//! invariant.
//!
//! Two claims, on random poly-sets × random forests × swept bounds:
//!
//! 1. **Unlimited guards are free** — every `*_guarded` engine under
//!    [`Guard::unlimited`] returns bit-for-bit the output of its
//!    unguarded entry point, tagged [`Completion::Complete`]. Guarding
//!    changes *when* a run may stop, never *what* it computes.
//! 2. **A step-capped run is a prefix of the uninterrupted trace** — a
//!    greedy run interrupted after `k` selection steps sits exactly on
//!    the `k`-th point of the full run's [`greedy_frontier`] trace, and
//!    the two independent greedy engines (incremental working-set vs.
//!    reference full-rescan) agree bit-for-bit on the interrupted VVS at
//!    every cap. An interrupted prefix is a *sound* abstraction: its VVS
//!    validates and its sizes are consistent.

use proptest::prelude::*;
use provabs_core::competitor::{pairwise_summarize, pairwise_summarize_guarded};
use provabs_core::greedy::{
    greedy_frontier, greedy_vvs, greedy_vvs_guarded, greedy_vvs_reference,
    greedy_vvs_reference_guarded,
};
use provabs_core::optimal::{optimal_vvs, optimal_vvs_guarded};
use provabs_provenance::guard::{Budget, CancelToken, Completion, Guard, Interrupt};
use provabs_provenance::monomial::Monomial;
use provabs_provenance::polynomial::Polynomial;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::var::{VarId, VarTable};
use provabs_trees::forest::Forest;
use provabs_trees::generate::random_tree;

/// Number of leaf variables the random instances draw from.
const NUM_LEAVES: u32 = 12;

fn leaf_table() -> (VarTable, Vec<String>) {
    let mut vars = VarTable::new();
    let names: Vec<String> = (0..NUM_LEAVES).map(|i| format!("x{i}")).collect();
    for (i, n) in names.iter().enumerate() {
        let id = vars.intern(n);
        assert_eq!(id, VarId(i as u32), "interning order is dense");
    }
    (vars, names)
}

/// A random poly-set over `x0..x11`, telephony-shaped: each monomial
/// draws at most one factor per tree-leaf half (forest compatibility).
fn polyset_strategy() -> impl Strategy<Value = PolySet<f64>> {
    let factor_a = prop::option::of((0u32..NUM_LEAVES / 2, 1u32..3));
    let factor_b = prop::option::of((NUM_LEAVES / 2..NUM_LEAVES, 1u32..3));
    prop::collection::vec(
        prop::collection::vec((factor_a, factor_b, 1i32..40), 0..10),
        0..7,
    )
    .prop_map(|polys| {
        PolySet::from_vec(
            polys
                .into_iter()
                .map(|terms| {
                    Polynomial::from_terms(terms.into_iter().map(|(fa, fb, c)| {
                        let factors = fa.into_iter().chain(fb);
                        (
                            Monomial::from_factors(factors.map(|(v, e)| (VarId(v), e))),
                            f64::from(c) / 4.0,
                        )
                    }))
                })
                .collect(),
        )
    })
}

fn random_forest(vars: &mut VarTable, names: &[String], seed: u64, two: bool) -> Forest {
    let (lo, hi) = names.split_at(names.len() / 2);
    let mut trees = vec![random_tree("A", lo, seed, vars)];
    if two {
        trees.push(random_tree("B", hi, seed.rotate_left(17) ^ 0xabcd, vars));
    }
    Forest::new(trees).expect("disjoint leaf halves")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Claim 1: `Guard::unlimited()` output is bit-identical to the
    /// unguarded engines, for every engine and a sweep of bounds.
    #[test]
    fn unlimited_guard_output_is_bit_identical(
        polys in polyset_strategy(),
        seed in 0u64..1_000,
    ) {
        let (mut vars, names) = leaf_table();
        let forest = random_forest(&mut vars, &names, seed, true);
        let single = random_forest(&mut leaf_table().0, &names, seed, false);
        let guard = Guard::unlimited();
        let total = polys.size_m();
        for bound in [1, 2, total / 2, total, total + 3] {
            if bound == 0 {
                continue;
            }
            // Greedy, both engines.
            match (greedy_vvs(&polys, &forest, bound), greedy_vvs_guarded(&polys, &forest, bound, &guard)) {
                (Ok(a), Ok((b, c))) => {
                    prop_assert_eq!(c, Completion::Complete);
                    prop_assert_eq!(&a.vvs, &b.vvs, "greedy bound {}", bound);
                    prop_assert_eq!(a.compressed_size_m, b.compressed_size_m);
                    prop_assert_eq!(a.compressed_size_v, b.compressed_size_v);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => panic!("greedy disagrees at bound {bound}: {a:?} vs {b:?}"),
            }
            match (greedy_vvs_reference(&polys, &forest, bound), greedy_vvs_reference_guarded(&polys, &forest, bound, &guard)) {
                (Ok(a), Ok((b, c))) => {
                    prop_assert_eq!(c, Completion::Complete);
                    prop_assert_eq!(&a.vvs, &b.vvs, "reference bound {}", bound);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => panic!("reference disagrees at bound {bound}: {a:?} vs {b:?}"),
            }
            // Optimal (single-tree regime).
            match (optimal_vvs(&polys, &single, bound), optimal_vvs_guarded(&polys, &single, bound, &guard)) {
                (Ok(a), Ok((b, c))) => {
                    prop_assert_eq!(c, Completion::Complete);
                    prop_assert_eq!(&a.vvs, &b.vvs, "optimal bound {}", bound);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => panic!("optimal disagrees at bound {bound}: {a:?} vs {b:?}"),
            }
            // Competitor baseline.
            match (pairwise_summarize(&polys, &forest, bound), pairwise_summarize_guarded(&polys, &forest, bound, &guard)) {
                (Ok((a, sa)), Ok((b, sb, c))) => {
                    prop_assert_eq!(c, Completion::Complete);
                    prop_assert_eq!(&a.vvs, &b.vvs, "competitor bound {}", bound);
                    prop_assert_eq!(sa.merges_applied, sb.merges_applied);
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => panic!("competitor disagrees at bound {bound}: {a:?} vs {b:?}"),
            }
        }
    }

    /// Claim 2: the interrupted greedy state is a bit-for-bit prefix of
    /// the uninterrupted run — at every step cap `k`, both engines land
    /// on the same VVS, and its sizes are exactly the `k`-th point of
    /// the full run's frontier trace.
    #[test]
    fn step_capped_greedy_is_a_prefix_of_the_uninterrupted_trace(
        polys in polyset_strategy(),
        seed in 0u64..1_000,
    ) {
        let (mut vars, names) = leaf_table();
        let forest = random_forest(&mut vars, &names, seed, true);
        // The frontier IS the uninterrupted run-to-exhaustion trace:
        // point `k` is the working-set size after `k` selection steps.
        // Target the trace's floor so the bound is attainable and the
        // uncapped run walks the whole trace.
        let trace = greedy_frontier(&polys, &forest).expect("frontier runs");
        let bound = trace.last().expect("non-empty trace").0.max(1);
        for cap in 0..trace.len() {
            let guard = Guard::new(Budget::with_steps(cap as u64));
            let (inc, inc_done) =
                greedy_vvs_guarded(&polys, &forest, bound, &guard).expect("anytime result");
            let (refr, ref_done) =
                greedy_vvs_reference_guarded(&polys, &forest, bound, &guard).expect("anytime result");
            // Engines agree bit-for-bit on the prefix.
            prop_assert_eq!(&inc.vvs, &refr.vvs, "cap {}", cap);
            prop_assert_eq!(inc_done, ref_done, "cap {}", cap);
            inc.vvs.validate(&inc.forest).expect("prefix VVS is sound");
            // The bounded run stops at the first trace point meeting the
            // bound (the frontier itself continues to exhaustion through
            // zero-ML merges).
            let first_hit = trace
                .iter()
                .position(|&(ml, _)| ml <= bound)
                .expect("the floor is on the trace");
            match inc_done {
                Completion::Complete => {
                    prop_assert!(
                        first_hit <= cap,
                        "completed in {} steps under cap {}", first_hit, cap
                    );
                    prop_assert_eq!(inc.compressed_size_m, trace[first_hit].0);
                    prop_assert_eq!(inc.compressed_size_v, trace[first_hit].1);
                }
                Completion::Interrupted { reason, steps, size_reached } => {
                    prop_assert_eq!(reason, Interrupt::StepCapExhausted);
                    prop_assert_eq!(steps, cap, "exact interruption point");
                    prop_assert!(cap < first_hit, "would have finished otherwise");
                    let (ml, vl) = trace[steps];
                    prop_assert_eq!(size_reached, ml, "on the trace at step {}", steps);
                    prop_assert_eq!(inc.compressed_size_m, ml);
                    prop_assert_eq!(inc.compressed_size_v, vl);
                }
            }
        }
    }
}

/// Cancellation is observed before any selection step: a pre-tripped
/// token yields the identity prefix (zero steps), typed `Cancelled`.
#[test]
fn pre_cancelled_guard_returns_the_identity_prefix() {
    let (mut vars, names) = leaf_table();
    let forest = random_forest(&mut vars, &names, 3, true);
    let polys = PolySet::from_vec(vec![Polynomial::from_terms([
        (Monomial::var(VarId(0)), 2.0),
        (Monomial::var(VarId(1)), 3.0),
        (Monomial::var(VarId(6)), 4.0),
    ])]);
    let token = CancelToken::new();
    token.cancel();
    let guard = Guard::unlimited().with_cancel(token);
    let (result, completion) = greedy_vvs_guarded(&polys, &forest, 1, &guard).expect("anytime");
    assert_eq!(result.compressed_size_m, result.original_size_m);
    let Completion::Interrupted { reason, steps, .. } = completion else {
        panic!("expected an interruption, got {completion:?}");
    };
    assert_eq!(reason, Interrupt::Cancelled);
    assert_eq!(steps, 0, "no selection step ran");
}

/// The optimal DP has no usable partial state, so an interrupted solve
/// degrades to the identity abstraction — sound, tagged, never an error.
#[test]
fn interrupted_optimal_falls_back_to_the_identity() {
    let (mut vars, names) = leaf_table();
    let forest = random_forest(&mut vars, &names, 5, false);
    let polys = PolySet::from_vec(vec![Polynomial::from_terms([
        (Monomial::var(VarId(0)), 1.0),
        (Monomial::var(VarId(1)), 2.0),
        (Monomial::var(VarId(2)), 3.0),
        (Monomial::var(VarId(3)), 4.0),
    ])]);
    let guard = Guard::new(Budget::with_steps(0));
    let (result, completion) = optimal_vvs_guarded(&polys, &forest, 1, &guard).expect("anytime");
    assert!(!completion.is_complete(), "the cap must trip the DP");
    assert_eq!(
        result.compressed_size_m, result.original_size_m,
        "identity fallback leaves the poly-set unchanged"
    );
    result
        .vvs
        .validate(&result.forest)
        .expect("identity VVS is sound");
}
