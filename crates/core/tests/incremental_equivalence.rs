//! Property suite: the incremental greedy engine is **bit-for-bit**
//! identical to the reference full-rescan engine.
//!
//! Identity here means behavioural identity of Algorithm 2: the same
//! chosen VVS (same nodes, hence same labels), the same
//! `greedy_frontier` step trace, the same tie-breaks, and the same
//! `BoundUnattainable` floors — on random poly-sets paired with random
//! single- and multi-tree forests, across every bound from 1 to the
//! identity size. The engines share nothing past the preamble: the
//! reference rewrites cloned hash-map polynomials, the incremental one an
//! interned working set with delta-maintained candidate scores, so
//! agreement is evidence the delta maintenance is sound, not a tautology.

use proptest::prelude::*;
use provabs_core::greedy::{
    greedy_frontier, greedy_frontier_reference, greedy_vvs, greedy_vvs_reference,
};
use provabs_provenance::monomial::Monomial;
use provabs_provenance::polynomial::Polynomial;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::var::{VarId, VarTable};
use provabs_trees::forest::Forest;
use provabs_trees::generate::random_tree;

/// Number of leaf variables the random instances draw from; `x0..x5`
/// belong to the first tree, `x6..x11` to the second.
const NUM_LEAVES: u32 = 12;

/// Interns `x0..x11` in a fresh table so `VarId(i)` is the variable
/// named `xi`, exactly as the polynomial strategy assumes.
fn leaf_table() -> (VarTable, Vec<String>) {
    let mut vars = VarTable::new();
    let names: Vec<String> = (0..NUM_LEAVES).map(|i| format!("x{i}")).collect();
    for (i, n) in names.iter().enumerate() {
        let id = vars.intern(n);
        assert_eq!(id, VarId(i as u32), "interning order is dense");
    }
    (vars, names)
}

/// A random poly-set over `x0..x11`: up to 7 polynomials of up to 10
/// monomials. Forest compatibility requires at most one tree variable
/// per monomial and tree, so each monomial draws at most one factor from
/// each leaf half (the halves are the tree leaf pools), telephony-style,
/// with exponents 1..=2. Coefficients are positive, keeping exact
/// cancellation out of play exactly as in the paper's workloads.
fn polyset_strategy() -> impl Strategy<Value = PolySet<f64>> {
    let factor_a = prop::option::of((0u32..NUM_LEAVES / 2, 1u32..3));
    let factor_b = prop::option::of((NUM_LEAVES / 2..NUM_LEAVES, 1u32..3));
    prop::collection::vec(
        prop::collection::vec((factor_a, factor_b, 1i32..40), 0..10),
        0..7,
    )
    .prop_map(|polys| {
        PolySet::from_vec(
            polys
                .into_iter()
                .map(|terms| {
                    Polynomial::from_terms(terms.into_iter().map(|(fa, fb, c)| {
                        let factors = fa.into_iter().chain(fb);
                        (
                            Monomial::from_factors(factors.map(|(v, e)| (VarId(v), e))),
                            f64::from(c) / 4.0,
                        )
                    }))
                })
                .collect(),
        )
    })
}

/// A random forest: one or two random trees over disjoint halves of the
/// leaf pool. With `two == false` the second half stays tree-less, so
/// single-tree instances (and leaves outside every tree) are covered.
fn random_forest(vars: &mut VarTable, names: &[String], seed: u64, two: bool) -> Forest {
    let (lo, hi) = names.split_at(names.len() / 2);
    let mut trees = vec![random_tree("A", lo, seed, vars)];
    if two {
        trees.push(random_tree("B", hi, seed.rotate_left(17) ^ 0xabcd, vars));
    }
    Forest::new(trees).expect("disjoint leaf halves")
}

/// Asserts both engines produce identical outcomes for one instance and
/// bound.
fn assert_engines_agree(polys: &PolySet<f64>, forest: &Forest, bound: usize) {
    let inc = greedy_vvs(polys, forest, bound);
    let refr = greedy_vvs_reference(polys, forest, bound);
    match (inc, refr) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.vvs, b.vvs, "VVS at bound {bound}");
            assert_eq!(a.compressed_size_m, b.compressed_size_m, "bound {bound}");
            assert_eq!(a.compressed_size_v, b.compressed_size_v, "bound {bound}");
            assert_eq!(a.original_size_m, b.original_size_m);
            assert_eq!(a.original_size_v, b.original_size_v);
            a.vvs.validate(&a.forest).expect("valid VVS");
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "errors at bound {bound}"),
        (a, b) => panic!("engines disagree at bound {bound}: {a:?} vs {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole invariant on multi-tree forests: identical VVS (or
    /// identical `BoundUnattainable` floor) for every bound, and an
    /// identical exhaustion trace.
    #[test]
    fn engines_agree_on_multi_tree_forests(
        polys in polyset_strategy(),
        seed in 0u64..1_000,
    ) {
        let (mut vars, names) = leaf_table();
        let forest = random_forest(&mut vars, &names, seed, true);
        let total = polys.size_m();
        for bound in 1..=total.max(1) {
            assert_engines_agree(&polys, &forest, bound);
        }
        prop_assert_eq!(
            greedy_frontier(&polys, &forest).expect("frontier"),
            greedy_frontier_reference(&polys, &forest).expect("frontier"),
        );
    }

    /// Single-tree instances (the regime where the greedy competes with
    /// the optimal DP) agree too, including the step trace.
    #[test]
    fn engines_agree_on_single_trees(
        polys in polyset_strategy(),
        seed in 0u64..1_000,
    ) {
        let (mut vars, names) = leaf_table();
        let forest = random_forest(&mut vars, &names, seed, false);
        let total = polys.size_m();
        // Sweep a sparse set of bounds plus the extremes.
        for bound in [1, 2, total / 2, total.saturating_sub(1), total, total + 3] {
            if bound >= 1 {
                assert_engines_agree(&polys, &forest, bound);
            }
        }
        prop_assert_eq!(
            greedy_frontier(&polys, &forest).expect("frontier"),
            greedy_frontier_reference(&polys, &forest).expect("frontier"),
        );
    }

    /// Unattainable bounds report the same floor from both engines: the
    /// bound-1 run exhausts every candidate, so the floors expose the
    /// full trace's end state.
    #[test]
    fn unattainable_floors_agree(
        polys in polyset_strategy(),
        seed in 0u64..1_000,
    ) {
        let (mut vars, names) = leaf_table();
        let forest = random_forest(&mut vars, &names, seed, seed % 2 == 0);
        assert_engines_agree(&polys, &forest, 1);
    }
}

/// Degenerate fixtures outside the random sweep.
#[test]
fn empty_and_trivial_instances_agree() {
    let (mut vars, names) = leaf_table();
    let forest = random_forest(&mut vars, &names, 7, true);
    // Empty poly-set: cleaning drops every tree; both engines answer with
    // the same unattainable floor.
    let empty: PolySet<f64> = PolySet::new();
    assert_engines_agree(&empty, &forest, 1);
    let r = greedy_vvs(&empty, &forest, 1).expect("size 0 is already ≤ 1");
    assert_eq!(r.compressed_size_m, 0);
    assert!(r.vvs.is_empty(), "cleaning dropped every tree");
    // …and the frontier is the lone identity point.
    assert_eq!(
        greedy_frontier(&empty, &forest).expect("runs"),
        vec![(0, 0)]
    );
    // A poly-set touching a single leaf: the cleaned forest is empty
    // (single-node trees admit no compression).
    let single = PolySet::from_vec(vec![Polynomial::from_terms([(
        Monomial::var(VarId(0)),
        1.0,
    )])]);
    assert_engines_agree(&single, &forest, 1);
}
