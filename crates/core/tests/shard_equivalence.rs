//! Cross-workload equivalence battery for the sharded engine.
//!
//! Three contracts, each checked across telephony, TPC-H Q10 and the
//! supply-chain BOM workload at several bounds:
//!
//! 1. **K = 1 is the plain engine, bit for bit** — same VVS, same
//!    measures, same error (including `best_possible`), same frontier.
//! 2. **K > 1 keeps whole-set `Target` meaning** — a complete sharded
//!    run satisfies the *global* monomial bound (or reports a sharded
//!    floor above it), and the merged frontier is weakly monotone in
//!    both coordinates (the granularity coordinate is a shard-local
//!    prediction that saturates — see the `shard` module docs).
//! 3. **Streaming ingest matches whole-input compression** on what
//!    compression preserves: every per-polynomial coefficient sum
//!    survives to the digit (tolerance `1e-9` relative, for f64
//!    re-association only), and both paths land under the same bound.
//!
//! The `#[ignore]`d million-monomial test at the bottom is the CI stress
//! job's entry point (`--release -- --ignored`): bounded-memory ingest
//! of `ScaleConfig::million()` with the peak-live assertion.

use provabs_core::greedy::{greedy_frontier, greedy_vvs_interned_guarded};
use provabs_core::shard::{
    sharded_greedy_frontier, sharded_greedy_interned_guarded, StreamingCompressor, StreamingConfig,
};
use provabs_datagen::scale::{scale_chunks, scale_forest, scale_working_set, ScaleConfig};
use provabs_datagen::{Workload, WorkloadConfig, WorkloadData};
use provabs_provenance::guard::Guard;
use provabs_provenance::working::WorkingSet;
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;

/// The three workload families the battery sweeps, at test-time scale.
fn workloads() -> Vec<(&'static str, WorkloadData, Forest)> {
    [
        Workload::Telephony,
        Workload::TpchQ10,
        Workload::SupplyChain,
    ]
    .into_iter()
    .map(|w| {
        let mut data = w.generate(&WorkloadConfig {
            scale: 0.05,
            param_modulus: 16,
            seed: 11,
        });
        let forest = data.primary_tree(1, 0);
        (w.name(), data, forest)
    })
    .collect()
}

/// A bound sweep for a working set of `size_m` monomials: identity,
/// light, halving, aggressive, and unattainably tight.
fn bounds_for(size_m: usize) -> Vec<usize> {
    vec![
        size_m + 5,
        size_m * 3 / 4,
        (size_m / 2).max(1),
        (size_m / 4).max(1),
        1,
    ]
}

/// Per-polynomial coefficient sums — the invariant every abstraction
/// preserves exactly (up to f64 re-association).
fn poly_sums(ws: &WorkingSet<f64>) -> Vec<f64> {
    (0..ws.num_polys())
        .map(|pi| ws.poly_terms(pi).map(|(_, c)| *c).sum())
        .collect()
}

#[test]
fn one_shard_is_the_plain_engine_across_workloads() {
    let guard = Guard::unlimited();
    for (name, data, forest) in &workloads() {
        let ws = &data.interned.working;
        for bound in bounds_for(ws.size_m()) {
            let plain = greedy_vvs_interned_guarded(ws, forest, bound, &guard);
            let sharded = sharded_greedy_interned_guarded(ws, forest, bound, 1, &guard);
            match (plain, sharded) {
                (Ok((pa, pc)), Ok((sa, sc))) => {
                    assert_eq!(pa.result.vvs, sa.result.vvs, "{name} bound {bound}");
                    assert_eq!(
                        pa.result.compressed_size_m, sa.result.compressed_size_m,
                        "{name} bound {bound}"
                    );
                    assert_eq!(
                        pa.result.compressed_size_v, sa.result.compressed_size_v,
                        "{name} bound {bound}"
                    );
                    assert_eq!(pa.working.size_m(), sa.working.size_m());
                    assert_eq!(pc.is_complete(), sc.is_complete());
                }
                (Err(pe), Err(se)) => {
                    assert_eq!(format!("{pe:?}"), format!("{se:?}"), "{name} bound {bound}");
                }
                (p, s) => panic!("{name} bound {bound}: plain {p:?} vs sharded {s:?} disagree"),
            }
        }
        // The frontier delegates identically at K = 1.
        assert_eq!(
            greedy_frontier(&data.polys, forest).unwrap(),
            sharded_greedy_frontier(&data.polys, forest, 1).unwrap(),
            "{name} frontier"
        );
    }
}

#[test]
fn multi_shard_respects_the_global_bound_across_workloads() {
    let guard = Guard::unlimited();
    for (name, data, forest) in &workloads() {
        let ws = &data.interned.working;
        let original_sums = poly_sums(ws);
        for shards in [2, 4, 8] {
            for bound in bounds_for(ws.size_m()) {
                match sharded_greedy_interned_guarded(ws, forest, bound, shards, &guard) {
                    Ok((abs, completion)) => {
                        assert!(completion.is_complete(), "{name} K={shards} bound {bound}");
                        assert!(
                            abs.result.compressed_size_m <= bound,
                            "{name} K={shards}: {} > bound {bound}",
                            abs.result.compressed_size_m
                        );
                        assert_eq!(abs.working.size_m(), abs.result.compressed_size_m);
                        assert_eq!(abs.result.original_size_m, ws.size_m());
                        // Value preservation: the abstraction only merges
                        // monomials, summing their coefficients.
                        let sums = poly_sums(&abs.working);
                        assert_eq!(sums.len(), original_sums.len());
                        for (a, b) in sums.iter().zip(&original_sums) {
                            assert!(
                                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                                "{name} K={shards} bound {bound}: {a} vs {b}"
                            );
                        }
                    }
                    Err(TreeError::BoundUnattainable {
                        bound: b,
                        best_possible,
                    }) => {
                        assert_eq!(b, bound);
                        assert!(
                            best_possible > bound,
                            "{name} K={shards}: floor {best_possible} not above bound {bound}"
                        );
                    }
                    Err(e) => panic!("{name} K={shards} bound {bound}: {e:?}"),
                }
            }
        }
    }
}

#[test]
fn sharded_frontiers_are_weakly_monotone_across_workloads() {
    for (name, data, forest) in &workloads() {
        for shards in [2, 4] {
            let frontier = sharded_greedy_frontier(&data.polys, forest, shards).unwrap();
            assert!(!frontier.is_empty(), "{name}");
            for pair in frontier.windows(2) {
                assert!(
                    pair[1].0 <= pair[0].0 && pair[1].1 <= pair[0].1,
                    "{name} K={shards}: {pair:?} not weakly decreasing"
                );
            }
            // Size strictly improves overall once any merge happened.
            if frontier.len() > 1 {
                assert!(
                    frontier.last().unwrap().0 < frontier[0].0,
                    "{name} K={shards}"
                );
            }
        }
    }
}

#[test]
fn streaming_matches_whole_input_compression_on_the_scale_fixture() {
    let cfg = ScaleConfig {
        groups: 24,
        plans: 16,
        months: 12,
        fill_permille: 900,
        seed: 7,
    };
    let guard = Guard::unlimited();
    let mut vars = provabs_provenance::VarTable::new();
    let whole = scale_working_set(&cfg, &mut vars);
    let forest = scale_forest(&cfg, &mut vars);
    let bound = whole.size_m() / 6;
    let (whole_abs, completion) =
        sharded_greedy_interned_guarded(&whole, &forest, bound, 1, &guard).unwrap();
    assert!(completion.is_complete());
    let whole_sums = poly_sums(&whole_abs.working);

    for (chunk_groups, budget_divisor) in [(4, 3), (7, 5), (24, 2)] {
        let mut stream = StreamingCompressor::new(
            &forest,
            StreamingConfig {
                bound,
                max_live_monomials: whole.size_m() / budget_divisor,
            },
        );
        for chunk in scale_chunks(cfg, chunk_groups, &mut vars) {
            stream.ingest(&chunk, &guard).unwrap();
        }
        let (abs, completion, stats) = stream.finish(&guard).unwrap();
        assert!(completion.is_complete(), "chunks of {chunk_groups}");
        assert_eq!(stats.ingested_size_m, whole.size_m());
        assert_eq!(abs.result.original_size_m, whole.size_m());
        // Both paths satisfy the same global bound…
        assert!(
            abs.result.compressed_size_m <= bound,
            "chunks of {chunk_groups}: {} > {bound}",
            abs.result.compressed_size_m
        );
        // …and preserve every per-polynomial value exactly (documented
        // tolerance: f64 re-association across differing merge orders).
        let sums = poly_sums(&abs.working);
        assert_eq!(sums.len(), whole_sums.len(), "chunks of {chunk_groups}");
        for (a, b) in sums.iter().zip(&whole_sums) {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "chunks of {chunk_groups}: {a} vs {b}"
            );
        }
    }
}

/// The CI stress job's entry point: bounded-memory streaming over the
/// million-monomial preset. Run with
/// `cargo test -p provabs-core --release --test shard_equivalence -- --ignored`.
#[test]
#[ignore = "million-monomial stress fixture; run explicitly in release"]
fn million_monomial_streaming_stays_under_the_memory_budget() {
    let cfg = ScaleConfig::million();
    let guard = Guard::unlimited();
    let mut vars = provabs_provenance::VarTable::new();
    let forest = scale_forest(&cfg, &mut vars);
    let budget = 220_000;
    let bound = 60_000;
    let mut stream = StreamingCompressor::new(
        &forest,
        StreamingConfig {
            bound,
            max_live_monomials: budget,
        },
    );
    let mut max_chunk = 0usize;
    for chunk in scale_chunks(cfg, 50, &mut vars) {
        max_chunk = max_chunk.max(chunk.size_m());
        stream.ingest(&chunk, &guard).unwrap();
    }
    let (abs, completion, stats) = stream.finish(&guard).unwrap();
    assert!(completion.is_complete());
    assert!(
        stats.ingested_size_m >= 1_000_000,
        "preset under a million: {}",
        stats.ingested_size_m
    );
    // The documented peak contract: threshold plus one resident chunk.
    assert!(
        stats.peak_live_monomials <= budget.max(bound) + max_chunk,
        "peak {} over budget {budget} + chunk {max_chunk}",
        stats.peak_live_monomials
    );
    assert!(stats.flushes > 0, "the budget never tripped");
    assert!(abs.result.compressed_size_m <= bound);
    assert_eq!(abs.result.original_size_m, stats.ingested_size_m);
}
