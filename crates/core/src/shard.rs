//! Sharded and out-of-core compression (ROADMAP item 4).
//!
//! The greedy engine of [`crate::greedy`] is a single sequential loop:
//! at million-monomial scale (telephony at millions of calls, §5) the
//! compress phase — not the ask phase, which already scales across cores
//! — becomes the bottleneck of the interactive what-if loop the paper
//! targets. This module splits that loop two ways:
//!
//! * **Sharding** ([`sharded_greedy_interned_guarded`]): the poly-set is
//!   partitioned by output group into K shards (size-balanced over the
//!   interned arena, [`partition_by_size`]), each shard gets a compacted
//!   per-shard [`WorkingSet`] via the subset machinery and runs the
//!   incremental greedy engine *concurrently* on a scoped thread pool,
//!   recording its selection steps as a trace. A k-way greedy merge then
//!   interleaves the per-shard traces by the engine's own order —
//!   minimal variable loss first, ties towards the larger monomial-loss
//!   delta, then label order — which is exactly what allocates the
//!   global monomial budget across shards by marginal loss, so
//!   `Target::Monomials(B)` / `Target::Ratio(r)` keep their whole-set
//!   meaning. The merged selection is realised *once* against the global
//!   cleaned forest (shard-chosen nodes are mapped over by variable —
//!   cleaning preserves variables — and the topmost applied nodes plus
//!   the uncovered leaves form the global VVS), so the source set is
//!   rewritten in a single pass instead of per shard.
//!
//!   Soundness: polynomials are disjoint across shards, so a shard's
//!   measured monomial-loss delta is realised *at least* once globally —
//!   a merge chosen in one shard can only save additional monomials in
//!   polynomials it never saw. The merged prediction is therefore a
//!   lower bound on the realised loss, and a predicted-adequate
//!   selection is actually adequate. The price of partitioning is a
//!   possibly higher exhaustion floor (no single shard sees every
//!   subtree's polynomials, so some high merges are never proposed) and
//!   a frontier whose loss coordinates are shard-local predictions; the
//!   equivalence suite pins both down.
//!
//! * **Streaming** ([`StreamingCompressor`]): the out-of-core ingest
//!   path of the online variant (§6). Chunks are interned one at a time,
//!   absorbed into a carried working set, rewritten under the cumulative
//!   abstraction, and compressed whenever the live size exceeds the
//!   configured memory budget — only the compressed working set is
//!   carried forward, so inputs larger than RAM complete under a bounded
//!   peak. Re-compression of an already-abstracted set runs over the
//!   *truncated* forest ([`truncate_forest`]): the carried live
//!   variables form an antichain in each tree, and the remaining
//!   headroom is the forest above it.
//!
//! Both paths carry the caller's [`Guard`]: shard workers observe the
//! cancel token at every shard claim *and* inside each shard's per-step
//! checkpoint ticks, the merge loop ticks per applied step, and every
//! interrupted run returns a sound anytime prefix tagged
//! [`Completion::Interrupted`].

use crate::greedy::{
    greedy_frontier, greedy_vvs_interned_guarded, run_incremental_ws_traced, TraceStep,
};
use crate::problem::{
    evaluate_vvs_interned, prepare_interned, AbstractionResult, InternedAbstraction,
};
use provabs_provenance::coeff::Coefficient;
use provabs_provenance::fxhash::FxHashSet;
use provabs_provenance::guard::{Completion, Guard, Interrupt};
use provabs_provenance::intern::MonoArena;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::var::VarId;
use provabs_provenance::working::{SubsetScratch, WorkingSet};
use provabs_trees::clean::truncate_forest;
use provabs_trees::cut::Vvs;
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;
use provabs_trees::tree::NodeId;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Size-balanced shard assignment over the interned working set: output
/// groups (polynomials) are placed largest-first onto the least-loaded
/// shard (LPT scheduling), where a group's weight is its live monomial
/// count. Deterministic: ties on weight fall back to polynomial index,
/// ties on load to shard index. Shards never exceed the polynomial
/// count; empty shards are dropped; each shard's index list is sorted so
/// per-shard working sets preserve the source order.
pub fn partition_by_size<C: Coefficient>(ws: &WorkingSet<C>, shards: usize) -> Vec<Vec<usize>> {
    let n = ws.num_polys();
    let shards = shards.clamp(1, n.max(1));
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&pi| (std::cmp::Reverse(ws.poly_size_m(pi)), pi));
    let mut loads = vec![0usize; shards];
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for pi in order {
        let target = (0..shards)
            .min_by_key(|&s| (loads[s], s))
            .expect("at least one shard");
        // Weight floor of 1 so even empty polynomials spread out.
        loads[target] += ws.poly_size_m(pi).max(1);
        parts[target].push(pi);
    }
    for part in &mut parts {
        part.sort_unstable();
    }
    parts.retain(|p| !p.is_empty());
    parts
}

/// A shard's recorded greedy run: the selection steps it applied (in its
/// local order) and how the run ended.
struct ShardTrace {
    steps: Vec<TraceStep>,
    completion: Completion,
}

/// How many worker threads the shard trace pass uses: one per shard,
/// capped at the machine's available parallelism.
fn shard_threads(shards: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    shards.clamp(1, hw)
}

/// Runs one shard to a trace: compacts the shard's working set (reusing
/// the caller's scratch), cleans the forest against it, and records the
/// incremental engine's steps up to a monomial-loss budget of `k`.
fn trace_one_shard<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    part: &[usize],
    k: usize,
    guard: &Guard,
    scratch: &mut SubsetScratch,
) -> Result<ShardTrace, TreeError> {
    let sub = source.subset_with(part, scratch);
    let shard_forest = prepare_interned(&sub, forest)?;
    if shard_forest.num_trees() == 0 {
        return Ok(ShardTrace {
            steps: Vec::new(),
            completion: Completion::Complete,
        });
    }
    let mut steps = Vec::new();
    let (_, _, completion) =
        run_incremental_ws_traced(sub, &shard_forest, k, guard, &mut |step, _, _| {
            steps.push(step)
        });
    Ok(ShardTrace { steps, completion })
}

/// The concurrent trace pass: shard indices are claimed from an atomic
/// cursor by a scoped pool (the executor's chunk-claim idiom), each
/// worker carrying the shared `&Guard` — the cancel token is observed at
/// every shard claim and, via the engine's checkpoint, at every
/// selection step inside a shard. A per-shard budget of `k` suffices:
/// the merge never consumes a shard's trace past the point where that
/// shard alone has predicted loss `k`.
fn run_shard_traces<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    parts: &[Vec<usize>],
    k: usize,
    guard: &Guard,
) -> Result<Vec<ShardTrace>, TreeError> {
    let threads = shard_threads(parts.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<ShardTrace, TreeError>>>> =
        parts.iter().map(|_| Mutex::new(None)).collect();
    let interrupted: Mutex<Option<Interrupt>> = Mutex::new(None);
    let worker = || {
        let mut scratch = SubsetScratch::new();
        loop {
            if let Err(reason) = guard.probe() {
                interrupted
                    .lock()
                    .expect("interrupt slot poisoned")
                    .get_or_insert(reason);
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(slot) = slots.get(i) else { break };
            let outcome = trace_one_shard(source, forest, &parts[i], k, guard, &mut scratch);
            *slot.lock().expect("trace slot poisoned") = Some(outcome);
        }
    };
    if threads <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }
    let reason = interrupted.into_inner().expect("interrupt slot poisoned");
    let mut traces = Vec::with_capacity(parts.len());
    for slot in slots {
        match slot.into_inner().expect("trace slot poisoned") {
            Some(Ok(trace)) => traces.push(trace),
            Some(Err(e)) => return Err(e),
            // Unclaimed shard: the guard tripped before a worker reached
            // it — an empty trace, reported as interrupted.
            None => traces.push(ShardTrace {
                steps: Vec::new(),
                completion: Completion::Interrupted {
                    reason: reason.unwrap_or(Interrupt::Cancelled),
                    steps: 0,
                    size_reached: 0,
                },
            }),
        }
    }
    Ok(traces)
}

/// The merged selection: applied step variables in merge order, the
/// predicted global frontier, and the folded completion.
struct MergedSelection {
    applied: Vec<VarId>,
    frontier: Vec<(usize, usize)>,
    completion: Completion,
}

/// The label of the global cleaned node carrying `var` — the merge's
/// tie-break key, identical to the engine's (labels are unique
/// forest-wide).
fn label_of(cleaned: &Forest, var: VarId) -> &str {
    cleaned
        .locate(var)
        .map(|(ti, node)| cleaned.tree(ti).label_of(node))
        .unwrap_or("")
}

/// The k-way greedy merge: repeatedly takes, among the shard traces'
/// next steps, the one the global engine would prefer — minimal variable
/// loss, then maximal monomial-loss delta, then label order — and
/// applies it, until the predicted loss reaches `k` or every trace is
/// exhausted. Each applied step extends the global frontier by
/// `(size − delta, granularity − vl)`; both coordinates weakly decrease
/// by construction. The granularity coordinate is a shard-local
/// prediction: variables shared across shards are double-counted, so it
/// saturates at 0 instead of going exact (the realised granularity of
/// the *final* selection is measured exactly by evaluating it).
fn merge_traces(
    cleaned: &Forest,
    traces: &[ShardTrace],
    k: usize,
    total_m: usize,
    total_v: usize,
    guard: &Guard,
) -> MergedSelection {
    let mut cursors = vec![0usize; traces.len()];
    let mut applied = Vec::new();
    let mut frontier = vec![(total_m, total_v)];
    let mut ml_total = 0usize;
    let mut vl_total = 0usize;
    let mut completion = traces
        .iter()
        .fold(Completion::Complete, |acc, t| acc.merge(t.completion));
    let mut checkpoint = guard.checkpoint();
    while ml_total < k {
        let mut best: Option<(usize, TraceStep)> = None;
        for (si, trace) in traces.iter().enumerate() {
            // Defensive: skip steps whose variable did not survive global
            // cleaning (the containment argument rules this out — a node
            // kept by shard-local cleaning has at least as many live
            // descendants globally).
            while cursors[si] < trace.steps.len()
                && cleaned.locate(trace.steps[cursors[si]].var).is_none()
            {
                debug_assert!(
                    false,
                    "shard-chosen variable missing from the global forest"
                );
                cursors[si] += 1;
            }
            let Some(&step) = trace.steps.get(cursors[si]) else {
                continue;
            };
            let better = match &best {
                None => true,
                Some((_, cur)) => {
                    step.vl < cur.vl
                        || (step.vl == cur.vl
                            && (step.delta > cur.delta
                                || (step.delta == cur.delta
                                    && label_of(cleaned, step.var) < label_of(cleaned, cur.var))))
                }
            };
            if better {
                best = Some((si, step));
            }
        }
        let Some((si, step)) = best else { break };
        if let Err(reason) = checkpoint.tick() {
            completion = completion.merge(Completion::Interrupted {
                reason,
                steps: applied.len(),
                size_reached: total_m.saturating_sub(ml_total),
            });
            break;
        }
        cursors[si] += 1;
        ml_total += step.delta;
        // Monomial-loss deltas stay within total_m (shards hold disjoint
        // polynomials), but variable-loss deltas double-count variables
        // shared across shards — the predicted granularity coordinate
        // saturates at 0 (documented; the realised final granularity
        // comes from evaluating the selection, which is exact).
        vl_total = vl_total.saturating_add(step.vl);
        applied.push(step.var);
        frontier.push((
            total_m.saturating_sub(ml_total),
            total_v.saturating_sub(vl_total),
        ));
    }
    MergedSelection {
        applied,
        frontier,
        completion,
    }
}

/// Realises a merged selection as a global VVS: per tree, a top-down
/// walk selects the *topmost* node whose variable was applied (deeper
/// applied nodes are subsumed) and every leaf with no applied ancestor —
/// an antichain covering all leaves by construction.
fn vvs_from_applied(cleaned: &Forest, applied: &[VarId]) -> Vvs {
    let applied_set: FxHashSet<VarId> = applied.iter().copied().collect();
    let mut per_tree: Vec<Vec<NodeId>> = Vec::with_capacity(cleaned.num_trees());
    for tree in cleaned.trees() {
        let mut chosen = Vec::new();
        let mut stack = vec![tree.root()];
        while let Some(n) = stack.pop() {
            if applied_set.contains(&tree.var_of(n)) || tree.is_leaf(n) {
                chosen.push(n); // covered — nothing below matters
            } else {
                stack.extend(tree.children(n).iter().copied());
            }
        }
        per_tree.push(chosen);
    }
    Vvs::from_per_tree(per_tree)
}

/// Rewrites an interruption to carry the realised final state; the
/// reason and `Complete` pass through unchanged.
fn normalize_completion(folded: Completion, steps: usize, size_reached: usize) -> Completion {
    match folded {
        Completion::Complete => Completion::Complete,
        Completion::Interrupted { reason, .. } => Completion::Interrupted {
            reason,
            steps,
            size_reached,
        },
    }
}

/// Sharded greedy compression in the interned currency: partitions into
/// `shards` shards, traces each shard's greedy run concurrently, merges
/// the traces by marginal loss, and realises the merged selection
/// against the global cleaned forest in one pass (see the
/// [module docs](self)).
///
/// `shards <= 1` (or a partition that collapses to one shard) delegates
/// to [`greedy_vvs_interned_guarded`] — bit-for-bit the unsharded
/// engine. For `shards > 1` the result satisfies the bound whenever the
/// run completes without [`TreeError::BoundUnattainable`]; the sharded
/// exhaustion floor may sit above the global engine's (see the module
/// docs), in which case the error's `best_possible` reports the sharded
/// floor.
///
/// Interrupted runs follow the engine's anytime contract: the merged
/// prefix applied so far comes back as a sound abstraction tagged
/// [`Completion::Interrupted`], exempt from the adequacy check.
pub fn sharded_greedy_interned_guarded<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    bound: usize,
    shards: usize,
    guard: &Guard,
) -> Result<(InternedAbstraction<C>, Completion), TreeError> {
    if shards <= 1 {
        return greedy_vvs_interned_guarded(source, forest, bound, guard);
    }
    let cleaned = prepare_interned(source, forest)?;
    let total_m = source.size_m();
    if bound >= total_m {
        let vvs = Vvs::identity(&cleaned);
        return Ok((
            evaluate_vvs_interned(source.clone(), &cleaned, vvs),
            Completion::Complete,
        ));
    }
    if cleaned.num_trees() == 0 {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: total_m,
        });
    }
    let parts = partition_by_size(source, shards);
    if parts.len() <= 1 {
        return greedy_vvs_interned_guarded(source, forest, bound, guard);
    }
    let total_v = source.size_v();
    let k = total_m - bound;
    let traces = run_shard_traces(source, forest, &parts, k, guard)?;
    let merged = merge_traces(&cleaned, &traces, k, total_m, total_v, guard);
    let vvs = vvs_from_applied(&cleaned, &merged.applied);
    debug_assert!(vvs.validate(&cleaned).is_ok());
    let abs = evaluate_vvs_interned(source.clone(), &cleaned, vvs);
    let completion = normalize_completion(
        merged.completion,
        merged.applied.len(),
        abs.working.size_m(),
    );
    if completion.is_complete() && !abs.result.is_adequate_for(bound) {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: abs.result.compressed_size_m,
        });
    }
    Ok((abs, completion))
}

/// The sharded size/granularity trade-off trace: traces every shard to
/// exhaustion, merges, and returns the global frontier — the sharded
/// counterpart of [`greedy_frontier`], starting at the identity point.
/// Loss coordinates are the merge's predictions (shard-local deltas):
/// realised sizes at any prefix can only be smaller, and the granularity
/// coordinate saturates at 0 when shards double-count shared variables
/// (see the [module docs](self)).
pub fn sharded_greedy_frontier<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    shards: usize,
) -> Result<Vec<(usize, usize)>, TreeError> {
    if shards <= 1 {
        return greedy_frontier(polys, forest);
    }
    let source = WorkingSet::from_polyset(polys);
    let cleaned = prepare_interned(&source, forest)?;
    let total_m = source.size_m();
    let total_v = source.size_v();
    if cleaned.num_trees() == 0 {
        return Ok(vec![(total_m, total_v)]);
    }
    let guard = Guard::ambient().unwrap_or_default();
    let parts = partition_by_size(&source, shards);
    let traces = run_shard_traces(&source, forest, &parts, usize::MAX, &guard)?;
    let merged = merge_traces(&cleaned, &traces, usize::MAX, total_m, total_v, &guard);
    Ok(merged.frontier)
}

/// Configuration of the bounded-memory streaming ingest path.
#[derive(Clone, Copy, Debug)]
pub struct StreamingConfig {
    /// The final monomial bound the compressed result must satisfy.
    pub bound: usize,
    /// The live-monomial memory budget: whenever the carried working
    /// set's `|𝒫|_M` exceeds `max(max_live_monomials, bound)` after an
    /// ingest, a compression flush runs. The peak live count is bounded
    /// by that threshold plus the largest single chunk (a chunk must be
    /// absorbed before it can be compressed) — the contract the stress
    /// suite asserts.
    pub max_live_monomials: usize,
}

/// Counters the streaming compressor accumulates across its run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamingStats {
    /// Chunks ingested.
    pub chunks: usize,
    /// Compression flushes triggered by the memory budget.
    pub flushes: usize,
    /// Total `|𝒫|_M` ingested across all chunks (the "original size" of
    /// the stream — never held in memory at once).
    pub ingested_size_m: usize,
    /// The largest live `|𝒫|_M` observed after any ingest.
    pub peak_live_monomials: usize,
}

/// Bounded-memory streaming compression (the out-of-core ingest path of
/// the online variant, §6): chunks are absorbed one at a time into a
/// carried working set, rewritten under the cumulative abstraction, and
/// compressed whenever the live size exceeds the memory budget — only
/// the compressed set is carried forward. See the [module docs](self).
///
/// ```
/// use provabs_core::shard::{StreamingCompressor, StreamingConfig};
/// use provabs_provenance::{guard::Guard, parse::parse_polyset, VarTable};
/// use provabs_provenance::working::WorkingSet;
/// use provabs_trees::{builder::TreeBuilder, forest::Forest};
///
/// let mut vars = VarTable::new();
/// let tree = TreeBuilder::new("AB").leaves("AB", ["a", "b"]).build(&mut vars).unwrap();
/// let forest = Forest::single(tree);
/// let mut stream = StreamingCompressor::new(&forest, StreamingConfig {
///     bound: 2,
///     max_live_monomials: 4,
/// });
/// let guard = Guard::unlimited();
/// for line in ["1·a·x + 2·b·x", "3·a·y + 4·b·y"] {
///     let chunk = parse_polyset(line, &mut vars).unwrap();
///     stream.ingest(&WorkingSet::from_polyset(&chunk), &guard).unwrap();
/// }
/// let (abs, _, stats) = stream.finish(&guard).unwrap();
/// assert!(abs.result.compressed_size_m <= 2);
/// assert_eq!(stats.chunks, 2);
/// assert_eq!(stats.ingested_size_m, 4);
/// ```
pub struct StreamingCompressor<'f, C> {
    forest: &'f Forest,
    config: StreamingConfig,
    /// The carried (already compressed) working set.
    carried: WorkingSet<C>,
    /// Every variable ever chosen by a flush — the cumulative
    /// abstraction. Incoming raw variables are mapped to their *topmost*
    /// chosen ancestor-or-self, so late chunks containing leaves below
    /// an already-merged subtree land in the abstracted space and the
    /// carried live variables stay an antichain per tree.
    chosen: FxHashSet<VarId>,
    /// Distinct raw variables seen across all chunks (`|𝒫|_V` of the
    /// stream).
    original_vars: FxHashSet<VarId>,
    completion: Completion,
    stats: StreamingStats,
}

/// The topmost chosen ancestor-or-self of `v` in the configured forest,
/// or `v` itself when no ancestor was ever chosen (including variables
/// outside the forest — context variables pass through).
fn cumulative_target(forest: &Forest, chosen: &FxHashSet<VarId>, v: VarId) -> VarId {
    let Some((ti, node)) = forest.locate(v) else {
        return v;
    };
    let tree = forest.tree(ti);
    let mut best = chosen.contains(&v).then_some(node);
    let mut cur = node;
    while let Some(parent) = tree.parent(cur) {
        if chosen.contains(&tree.var_of(parent)) {
            best = Some(parent);
        }
        cur = parent;
    }
    best.map_or(v, |n| tree.var_of(n))
}

impl<'f, C: Coefficient> StreamingCompressor<'f, C> {
    /// A fresh compressor over `forest` with the given budget.
    pub fn new(forest: &'f Forest, config: StreamingConfig) -> Self {
        Self {
            forest,
            config,
            carried: WorkingSet::from_parts(MonoArena::new(), Vec::new()),
            chosen: FxHashSet::default(),
            original_vars: FxHashSet::default(),
            completion: Completion::Complete,
            stats: StreamingStats::default(),
        }
    }

    /// The flush threshold: the configured budget, never below the final
    /// bound (a result of `bound` monomials must be holdable).
    fn threshold(&self) -> usize {
        self.config.max_live_monomials.max(self.config.bound)
    }

    /// Current live `|𝒫|_M` of the carried working set.
    pub fn live_size_m(&self) -> usize {
        self.carried.size_m()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> StreamingStats {
        self.stats
    }

    /// Absorbs one chunk: appends its polynomials, rewrites them under
    /// the cumulative abstraction, and flushes if the live size exceeds
    /// the budget. Returns the folded completion so far — interruptions
    /// of a mid-stream flush follow the anytime contract (the flush
    /// freed less memory than asked; the stream stays sound).
    pub fn ingest(
        &mut self,
        chunk: &WorkingSet<C>,
        guard: &Guard,
    ) -> Result<Completion, TreeError> {
        self.stats.chunks += 1;
        self.stats.ingested_size_m += chunk.size_m();
        self.original_vars.extend(chunk.live_vars());
        self.carried.absorb(chunk);
        if !self.chosen.is_empty() {
            let (forest, chosen) = (self.forest, &self.chosen);
            self.carried
                .apply_var_map(|v| cumulative_target(forest, chosen, v));
        }
        self.stats.peak_live_monomials = self.stats.peak_live_monomials.max(self.carried.size_m());
        if self.carried.size_m() > self.threshold() {
            self.flush(guard)?;
        }
        Ok(self.completion)
    }

    /// One budget-triggered compression flush: compress the carried set
    /// towards half the threshold (never below the final bound) over the
    /// remaining truncated forest.
    fn flush(&mut self, guard: &Guard) -> Result<(), TreeError> {
        self.stats.flushes += 1;
        let flush_bound = self.config.bound.max(self.threshold() / 2).max(1);
        self.compress_carried_to(flush_bound, guard)
    }

    /// Compresses the carried set towards `bound` over the truncated
    /// forest. An unattainable intermediate bound is *relaxed to the
    /// attainable floor* instead of failing — mid-stream it only means
    /// this flush frees less memory; running out of abstraction headroom
    /// entirely (an empty truncated forest) is likewise not an error
    /// here. Only [`StreamingCompressor::finish`] enforces the final
    /// bound.
    fn compress_carried_to(&mut self, bound: usize, guard: &Guard) -> Result<(), TreeError> {
        if self.carried.size_m() <= bound {
            return Ok(());
        }
        let frontier = self.carried.live_vars();
        let remaining = truncate_forest(self.forest, &frontier);
        if remaining.num_trees() == 0 {
            return Ok(());
        }
        match greedy_vvs_interned_guarded(&self.carried, &remaining, bound, guard) {
            Ok((abs, completion)) => self.adopt(abs, completion),
            Err(TreeError::BoundUnattainable { best_possible, .. })
                if best_possible < self.carried.size_m() =>
            {
                let (abs, completion) =
                    greedy_vvs_interned_guarded(&self.carried, &remaining, best_possible, guard)?;
                self.adopt(abs, completion);
            }
            Err(TreeError::BoundUnattainable { .. }) => {} // already at the floor
            Err(e) => return Err(e),
        }
        Ok(())
    }

    /// Folds a flush result into the carried state.
    fn adopt(&mut self, abs: InternedAbstraction<C>, completion: Completion) {
        self.chosen.extend(abs.result.vvs.vars(&abs.result.forest));
        self.carried = abs.working;
        self.completion = self.completion.merge(completion);
    }

    /// Finishes the stream: compresses the carried set to the final
    /// bound and returns the end-to-end abstraction. The result's
    /// `forest` and `vvs` describe the final state — the remaining
    /// truncated forest with the cumulative antichain as its leaves, all
    /// substitutions already applied to `working` — while the size
    /// measures span the whole stream (`original_size_m` is the total
    /// ingested count, which was never held in memory at once).
    ///
    /// A complete run that cannot reach the bound fails with
    /// [`TreeError::BoundUnattainable`]; an interrupted final
    /// compression returns its anytime prefix tagged
    /// [`Completion::Interrupted`].
    #[allow(clippy::type_complexity)]
    pub fn finish(
        mut self,
        guard: &Guard,
    ) -> Result<(InternedAbstraction<C>, Completion, StreamingStats), TreeError> {
        let bound = self.config.bound;
        if self.carried.size_m() > bound {
            let frontier = self.carried.live_vars();
            let remaining = truncate_forest(self.forest, &frontier);
            if remaining.num_trees() == 0 {
                return Err(TreeError::BoundUnattainable {
                    bound,
                    best_possible: self.carried.size_m(),
                });
            }
            let (abs, completion) =
                greedy_vvs_interned_guarded(&self.carried, &remaining, bound, guard)?;
            self.adopt(abs, completion);
        }
        let frontier = self.carried.live_vars();
        let remaining = truncate_forest(self.forest, &frontier);
        let vvs = Vvs::identity(&remaining);
        let result = AbstractionResult {
            forest: remaining,
            vvs,
            original_size_m: self.stats.ingested_size_m,
            original_size_v: self.original_vars.len(),
            compressed_size_m: self.carried.size_m(),
            compressed_size_v: self.carried.size_v(),
        };
        Ok((
            InternedAbstraction {
                result,
                working: self.carried,
            },
            self.completion,
            self.stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_provenance::parse::parse_polyset;
    use provabs_provenance::var::VarTable;
    use provabs_trees::builder::TreeBuilder;
    use provabs_trees::generate::{months_tree, plans_tree};

    fn example_15() -> (PolySet<f64>, Forest, VarTable) {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        let forest =
            Forest::new(vec![plans_tree(&mut vars), months_tree(&mut vars)]).expect("disjoint");
        (polys, forest, vars)
    }

    #[test]
    fn partition_is_balanced_and_deterministic() {
        let (polys, _, _) = example_15();
        let ws = WorkingSet::from_polyset(&polys);
        let parts = partition_by_size(&ws, 2);
        assert_eq!(parts.len(), 2);
        // Both polynomials assigned, no overlap.
        let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1]);
        // Repeatable.
        assert_eq!(parts, partition_by_size(&ws, 2));
        // More shards than polynomials clamps; empty shards are dropped.
        assert_eq!(partition_by_size(&ws, 64).len(), 2);
        assert_eq!(partition_by_size(&ws, 1).len(), 1);
    }

    #[test]
    fn partition_balances_by_monomial_weight() {
        let mut vars = VarTable::new();
        // One heavy polynomial (4 monomials) and four light ones.
        let polys = parse_polyset(
            "1·a·x + 1·b·x + 1·a·y + 1·b·y\n1·a·x\n1·b·x\n1·a·y\n1·b·y",
            &mut vars,
        )
        .expect("parse");
        let ws = WorkingSet::from_polyset(&polys);
        let parts = partition_by_size(&ws, 2);
        let loads: Vec<usize> = parts
            .iter()
            .map(|p| p.iter().map(|&pi| ws.poly_size_m(pi)).sum())
            .collect();
        // LPT puts the heavy polynomial alone against the four light ones.
        assert_eq!(loads.iter().max(), loads.iter().min());
    }

    #[test]
    fn one_shard_delegates_to_the_plain_engine() {
        let (polys, forest, _) = example_15();
        let source = WorkingSet::from_polyset(&polys);
        let guard = Guard::unlimited();
        for bound in 1..=polys.size_m() + 1 {
            let plain = greedy_vvs_interned_guarded(&source, &forest, bound, &guard);
            let sharded = sharded_greedy_interned_guarded(&source, &forest, bound, 1, &guard);
            match (plain, sharded) {
                (Ok((a, ca)), Ok((b, cb))) => {
                    assert_eq!(a.result.vvs, b.result.vvs, "bound {bound}");
                    assert_eq!(a.result.compressed_size_m, b.result.compressed_size_m);
                    assert_eq!(ca, cb);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "bound {bound}"),
                (a, b) => panic!("K=1 diverges at bound {bound}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn sharded_output_is_valid_and_adequate() {
        let (polys, forest, _) = example_15();
        let source = WorkingSet::from_polyset(&polys);
        let guard = Guard::unlimited();
        for shards in [2, 3, 4] {
            for bound in 2..=polys.size_m() {
                match sharded_greedy_interned_guarded(&source, &forest, bound, shards, &guard) {
                    Ok((abs, completion)) => {
                        assert!(completion.is_complete());
                        abs.result.vvs.validate(&abs.result.forest).expect("valid");
                        assert!(
                            abs.result.compressed_size_m <= bound,
                            "K={shards} bound {bound}: {}",
                            abs.result.compressed_size_m
                        );
                        assert_eq!(abs.working.size_m(), abs.result.compressed_size_m);
                    }
                    Err(TreeError::BoundUnattainable { best_possible, .. }) => {
                        // The sharded floor may sit above the global one.
                        assert!(best_possible > bound, "K={shards} bound {bound}");
                    }
                    Err(e) => panic!("unexpected error K={shards} bound {bound}: {e}"),
                }
            }
        }
    }

    #[test]
    fn sharded_frontier_is_monotone() {
        let (polys, forest, _) = example_15();
        for shards in [1, 2, 4] {
            let frontier = sharded_greedy_frontier(&polys, &forest, shards).expect("runs");
            assert_eq!(frontier[0], (polys.size_m(), polys.size_v()));
            for w in frontier.windows(2) {
                assert!(w[1].0 <= w[0].0, "K={shards}: size must weakly decrease");
                assert!(
                    w[1].1 <= w[0].1,
                    "K={shards}: granularity must weakly decrease"
                );
            }
            if shards == 1 {
                // The unsharded tracer's granularity is exact and strict.
                for w in frontier.windows(2) {
                    assert!(w[1].1 < w[0].1, "K=1 granularity must strictly decrease");
                }
            }
        }
    }

    #[test]
    fn guard_cancellation_interrupts_the_shard_pass() {
        use provabs_provenance::guard::{Budget, CancelToken};
        let (polys, forest, _) = example_15();
        let source = WorkingSet::from_polyset(&polys);
        let token = CancelToken::new();
        token.cancel();
        let guard = Guard::new(Budget::unlimited()).with_cancel(token);
        let (abs, completion) =
            sharded_greedy_interned_guarded(&source, &forest, 2, 4, &guard).expect("anytime");
        assert!(!completion.is_complete());
        // Nothing was applied: the pre-cancelled token stops every shard
        // at its first claim, so the result is the identity abstraction.
        assert_eq!(abs.result.compressed_size_m, polys.size_m());
        match completion {
            Completion::Interrupted { reason, .. } => assert_eq!(reason, Interrupt::Cancelled),
            Completion::Complete => unreachable!(),
        }
    }

    #[test]
    fn step_cap_yields_a_sound_prefix() {
        use provabs_provenance::guard::Budget;
        let (polys, forest, _) = example_15();
        let source = WorkingSet::from_polyset(&polys);
        // A tiny step budget: the run must stop early but stay valid.
        let guard = Guard::new(Budget::with_steps(2));
        let (abs, completion) =
            sharded_greedy_interned_guarded(&source, &forest, 2, 2, &guard).expect("anytime");
        assert!(!completion.is_complete());
        abs.result
            .vvs
            .validate(&abs.result.forest)
            .expect("valid prefix");
        assert!(abs.result.compressed_size_m >= 2);
    }

    #[test]
    fn streaming_matches_whole_input_on_coefficient_sums() {
        let (polys, forest, _) = example_15();
        let whole = WorkingSet::from_polyset(&polys);
        let guard = Guard::unlimited();
        let mut stream = StreamingCompressor::new(
            &forest,
            StreamingConfig {
                bound: 4,
                max_live_monomials: 8,
            },
        );
        for pi in 0..whole.num_polys() {
            stream.ingest(&whole.subset(&[pi]), &guard).expect("ingest");
        }
        let (abs, completion, stats) = stream.finish(&guard).expect("finish");
        assert!(completion.is_complete());
        assert_eq!(stats.chunks, 2);
        assert_eq!(stats.ingested_size_m, polys.size_m());
        assert!(abs.result.compressed_size_m <= 4);
        assert_eq!(abs.result.original_size_m, polys.size_m());
        // Abstraction merges monomials by adding coefficients, so each
        // polynomial's coefficient sum is invariant end-to-end.
        for pi in 0..abs.working.num_polys() {
            let streamed: f64 = abs.working.poly_terms(pi).map(|(_, c)| *c).sum();
            let original: f64 = whole.poly_terms(pi).map(|(_, c)| *c).sum();
            assert!(
                (streamed - original).abs() < 1e-9,
                "poly {pi}: {streamed} vs {original}"
            );
        }
    }

    #[test]
    fn streaming_late_leaves_below_chosen_nodes_are_remapped() {
        // Chunk 1 forces a flush that abstracts the group; chunk 2 then
        // arrives with a *raw leaf below the chosen node* and must land
        // in the abstracted space.
        let mut vars = VarTable::new();
        let tree = TreeBuilder::new("G")
            .leaves("G", ["a", "b", "c"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        let chunk1 = parse_polyset("1·a·x + 1·b·x + 1·c·x", &mut vars).expect("parse");
        let chunk2 = parse_polyset("1·a·y + 1·b·y", &mut vars).expect("parse");
        let guard = Guard::unlimited();
        let mut stream = StreamingCompressor::new(
            &forest,
            StreamingConfig {
                bound: 2,
                max_live_monomials: 2,
            },
        );
        stream
            .ingest(&WorkingSet::from_polyset(&chunk1), &guard)
            .expect("chunk 1");
        assert!(stream.stats().flushes >= 1, "budget must have flushed");
        assert!(stream.live_size_m() <= 3);
        stream
            .ingest(&WorkingSet::from_polyset(&chunk2), &guard)
            .expect("chunk 2");
        let (abs, _, stats) = stream.finish(&guard).expect("finish");
        assert!(abs.result.compressed_size_m <= 2);
        assert_eq!(stats.ingested_size_m, 5);
        // a and b of chunk 2 merged under the already-chosen G: the
        // second polynomial collapsed to a single G·y monomial of
        // coefficient 2.
        assert_eq!(abs.working.poly_size_m(1), 1);
        let coeff: f64 = abs.working.poly_terms(1).map(|(_, c)| *c).sum();
        assert!((coeff - 2.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_peak_respects_the_budget_contract() {
        let (polys, forest, _) = example_15();
        let whole = WorkingSet::from_polyset(&polys);
        let guard = Guard::unlimited();
        let cap = 6;
        let mut stream = StreamingCompressor::new(
            &forest,
            StreamingConfig {
                bound: 4,
                max_live_monomials: cap,
            },
        );
        let mut max_chunk = 0;
        for pi in 0..whole.num_polys() {
            let chunk = whole.subset(&[pi]);
            max_chunk = max_chunk.max(chunk.size_m());
            stream.ingest(&chunk, &guard).expect("ingest");
        }
        let (_, _, stats) = stream.finish(&guard).expect("finish");
        assert!(
            stats.peak_live_monomials <= cap + max_chunk,
            "peak {} exceeds cap {} + chunk {}",
            stats.peak_live_monomials,
            cap,
            max_chunk
        );
    }
}
