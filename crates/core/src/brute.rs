//! Brute-force baseline: exhaustive search over every cut.
//!
//! The evaluation's baseline "loops over all possible VVS and selects the
//! optimal one" (§4.3). The number of cuts is exponential (Table 2), so —
//! exactly like the paper, where brute force "was able to complete the
//! computation only when the number of VVS was less than 80,000" — the
//! search refuses instances above a configurable limit with
//! [`TreeError::SearchSpaceTooLarge`].

use crate::problem::{evaluate_vvs, prepare, AbstractionResult};
use provabs_provenance::coeff::Coefficient;
use provabs_provenance::guard;
use provabs_provenance::polyset::PolySet;
use provabs_trees::cut::{enumerate_forest_cuts, Vvs};
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;

/// Default enumeration limit, chosen to match the paper's observed
/// feasibility threshold for the brute-force baseline.
pub const DEFAULT_CUT_LIMIT: u128 = 80_000;

/// Exhaustively finds the optimal VVS for `bound` (max granularity among
/// adequate cuts), or reports that no adequate cut exists / the space is
/// too large.
pub fn brute_force_vvs<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
    cut_limit: u128,
) -> Result<AbstractionResult, TreeError> {
    let cleaned = prepare(polys, forest)?;
    let total_m = polys.size_m();
    if bound >= total_m {
        let vvs = Vvs::identity(&cleaned);
        return Ok(evaluate_vvs(polys, &cleaned, vvs));
    }
    let cuts = cleaned.count_cuts();
    if cuts > cut_limit {
        return Err(TreeError::SearchSpaceTooLarge {
            cuts,
            limit: cut_limit,
        });
    }
    let all = enumerate_forest_cuts(&cleaned, cut_limit as usize, cut_limit)
        .expect("count checked against limit");

    // Fast path: when no monomial contains variables of two *different*
    // trees, ML and VL are additive over all chosen nodes (compatibility
    // already makes sibling subtrees compress disjoint monomial groups —
    // the same insight Algorithm 1 builds on; disjoint tree footprints
    // extend it across trees). Each cut is then scored in O(|S|) from the
    // precomputed per-node losses instead of materialising `𝒫↓S`.
    // Whenever a monomial touches two trees (e.g. `p1·m1` under the plans
    // + months forest of Example 15), merges interact and cuts must be
    // materialised.
    let interacting = polys.monomials().any(|(_, mono, _)| {
        let mut seen_tree = None;
        for v in mono.vars() {
            if let Some((ti, _)) = cleaned.locate(v) {
                if seen_tree.is_some_and(|prev| prev != ti) {
                    return true;
                }
                seen_tree = Some(ti);
            }
        }
        false
    });
    let additive_loss: Option<Vec<crate::loss::TreeLoss>> = (!interacting).then(|| {
        cleaned
            .trees()
            .iter()
            .map(|t| crate::loss::TreeLoss::build(polys, t))
            .collect()
    });
    let total_v = polys.size_v();

    let mut best: Option<(usize, Vvs)> = None; // (compressed_v, vvs) among adequate
    let mut floor = usize::MAX; // smallest size seen, for error reporting
    for vvs in all {
        let (size_m, size_v) = match &additive_loss {
            Some(losses) => {
                let (mut ml, mut vl) = (0usize, 0usize);
                for (ti, loss) in losses.iter().enumerate() {
                    for &n in vvs.tree_nodes(ti) {
                        ml += loss.ml_of(n);
                        vl += loss.vl_of(n);
                    }
                }
                (total_m - ml, total_v - vl)
            }
            None => {
                let down = vvs.apply(polys, &cleaned);
                (down.size_m(), down.size_v())
            }
        };
        floor = floor.min(size_m);
        if size_m <= bound && best.as_ref().is_none_or(|(bv, _)| size_v > *bv) {
            best = Some((size_v, vvs));
        }
    }
    match best {
        Some((_, vvs)) => Ok(evaluate_vvs(polys, &cleaned, vvs)),
        None => Err(TreeError::BoundUnattainable {
            bound,
            best_possible: floor,
        }),
    }
}

/// Parallel brute force: scores the enumerated cuts across `threads`
/// OS threads (plain `std::thread::scope`; the shared state — cleaned
/// forest, polynomials, per-node losses — is read-only). Produces exactly
/// the same result as [`brute_force_vvs`]: ties on granularity resolve
/// towards the earliest enumerated cut in both variants.
pub fn brute_force_vvs_parallel<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
    cut_limit: u128,
    threads: usize,
) -> Result<AbstractionResult, TreeError> {
    let cleaned = prepare(polys, forest)?;
    let total_m = polys.size_m();
    if bound >= total_m {
        let vvs = Vvs::identity(&cleaned);
        return Ok(evaluate_vvs(polys, &cleaned, vvs));
    }
    let cuts = cleaned.count_cuts();
    if cuts > cut_limit {
        return Err(TreeError::SearchSpaceTooLarge {
            cuts,
            limit: cut_limit,
        });
    }
    let all = enumerate_forest_cuts(&cleaned, cut_limit as usize, cut_limit)
        .expect("count checked against limit");
    let interacting = polys.monomials().any(|(_, mono, _)| {
        let mut seen_tree = None;
        for v in mono.vars() {
            if let Some((ti, _)) = cleaned.locate(v) {
                if seen_tree.is_some_and(|prev| prev != ti) {
                    return true;
                }
                seen_tree = Some(ti);
            }
        }
        false
    });
    let additive_loss: Option<Vec<crate::loss::TreeLoss>> = (!interacting).then(|| {
        cleaned
            .trees()
            .iter()
            .map(|t| crate::loss::TreeLoss::build(polys, t))
            .collect()
    });
    let total_v = polys.size_v();

    // Score one cut (shared with the serial path's semantics).
    let score = |vvs: &Vvs| -> (usize, usize) {
        match &additive_loss {
            Some(losses) => {
                let (mut ml, mut vl) = (0usize, 0usize);
                for (ti, loss) in losses.iter().enumerate() {
                    for &n in vvs.tree_nodes(ti) {
                        ml += loss.ml_of(n);
                        vl += loss.vl_of(n);
                    }
                }
                (total_m - ml, total_v - vl)
            }
            None => {
                let down = vvs.apply(polys, &cleaned);
                (down.size_m(), down.size_v())
            }
        }
    };

    let threads = threads.max(1).min(all.len().max(1));
    let chunk = all.len().div_ceil(threads);
    // Per-chunk partial results: (floor, Option<(size_v, global index)>).
    type Partial = (usize, Option<(usize, usize)>);
    // Each worker runs behind the shared panic-isolation boundary (the
    // same helper the scenario executor uses): a panicking chunk yields
    // a typed TreeError::WorkerPanic while sibling chunks still finish.
    let partials: Vec<Result<Partial, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = all
            .chunks(chunk.max(1))
            .enumerate()
            .map(|(ci, cuts)| {
                let score = &score;
                s.spawn(move || {
                    guard::run_isolated_mut(|| {
                        let mut floor = usize::MAX;
                        let mut best: Option<(usize, usize)> = None;
                        for (i, vvs) in cuts.iter().enumerate() {
                            let (size_m, size_v) = score(vvs);
                            floor = floor.min(size_m);
                            if size_m <= bound && best.is_none_or(|(bv, _)| size_v > bv) {
                                best = Some((size_v, ci * chunk + i));
                            }
                        }
                        (floor, best)
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(isolated) => isolated,
                // Unreachable in practice (the worker body is fully
                // wrapped), but a join failure is still a panic report.
                Err(payload) => Err(guard::panic_message(payload.as_ref())),
            })
            .collect()
    });
    let partials: Vec<Partial> = partials
        .into_iter()
        .collect::<Result<_, _>>()
        .map_err(|payload| TreeError::WorkerPanic { payload })?;

    let floor = partials.iter().map(|&(f, _)| f).min().unwrap_or(usize::MAX);
    // Deterministic reduce: max granularity, then smallest index.
    let best = partials
        .iter()
        .filter_map(|&(_, b)| b)
        .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    match best {
        Some((_, idx)) => Ok(evaluate_vvs(polys, &cleaned, all[idx].clone())),
        None => Err(TreeError::BoundUnattainable {
            bound,
            best_possible: floor,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_vvs;
    use crate::optimal::optimal_vvs;
    use provabs_provenance::parse::parse_polyset;
    use provabs_provenance::var::VarTable;
    use provabs_trees::generate::{months_tree, plans_tree};

    fn example_13() -> (PolySet<f64>, Forest) {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        let forest = Forest::single(plans_tree(&mut vars));
        (polys, forest)
    }

    #[test]
    fn brute_force_matches_optimal_on_single_tree() {
        let (polys, forest) = example_13();
        for bound in 4..=14 {
            let b = brute_force_vvs(&polys, &forest, bound, DEFAULT_CUT_LIMIT);
            let o = optimal_vvs(&polys, &forest, bound);
            match (b, o) {
                (Ok(b), Ok(o)) => {
                    assert_eq!(b.compressed_size_v, o.compressed_size_v, "bound {bound}");
                    assert!(b.is_adequate_for(bound));
                }
                (Err(eb), Err(eo)) => assert_eq!(eb, eo, "bound {bound}"),
                (b, o) => panic!("bound {bound}: brute {b:?} vs optimal {o:?}"),
            }
        }
    }

    #[test]
    fn brute_force_beats_or_equals_greedy_on_forest() {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        let forest =
            Forest::new(vec![plans_tree(&mut vars), months_tree(&mut vars)]).expect("disjoint");
        // Example 15's bound: greedy reaches VL 5, the optimum is VL 4.
        let b = brute_force_vvs(&polys, &forest, 4, DEFAULT_CUT_LIMIT).expect("adequate");
        let g = greedy_vvs(&polys, &forest, 4).expect("adequate");
        assert_eq!(b.vl(), 4);
        assert!(g.vl() >= b.vl());
    }

    #[test]
    fn additive_multi_tree_fast_path_matches_materialisation() {
        // Two trees over disjoint variable families, and no monomial
        // touches both — the additive fast path applies. Cross-check its
        // result against explicit materialisation of every cut.
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "1·x1·c0 + 2·x2·c0 + 3·x1·c1 + 4·x2·c1\n5·y1·c0 + 6·y2·c0 + 7·y1·c1",
            &mut vars,
        )
        .expect("parse");
        let tx = provabs_trees::builder::TreeBuilder::new("X")
            .leaves("X", ["x1", "x2"])
            .build(&mut vars)
            .expect("tree");
        let ty = provabs_trees::builder::TreeBuilder::new("Y")
            .leaves("Y", ["y1", "y2"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::new(vec![tx, ty]).expect("disjoint");
        for bound in 1..=polys.size_m() {
            // Reference: materialise every cut by hand.
            let cuts =
                provabs_trees::cut::enumerate_forest_cuts(&forest, 100, 100).expect("4 cuts");
            let mut best: Option<usize> = None;
            let mut floor = usize::MAX;
            for vvs in cuts {
                let down = vvs.apply(&polys, &forest);
                floor = floor.min(down.size_m());
                if down.size_m() <= bound {
                    best = Some(best.map_or(down.size_v(), |b: usize| b.max(down.size_v())));
                }
            }
            match (brute_force_vvs(&polys, &forest, bound, 100), best) {
                (Ok(r), Some(v)) => {
                    assert_eq!(r.compressed_size_v, v, "bound {bound}");
                    assert!(r.is_adequate_for(bound));
                }
                (Err(TreeError::BoundUnattainable { best_possible, .. }), None) => {
                    assert_eq!(best_possible, floor, "bound {bound}");
                }
                (r, b) => panic!("bound {bound}: {r:?} vs reference {b:?}"),
            }
        }
    }

    #[test]
    fn search_space_limit_is_enforced() {
        let (polys, forest) = example_13();
        let err = brute_force_vvs(&polys, &forest, 9, 3).expect_err("limit 3");
        assert!(matches!(err, TreeError::SearchSpaceTooLarge { .. }));
    }

    #[test]
    fn unattainable_bound_reports_floor() {
        let (polys, forest) = example_13();
        let err = brute_force_vvs(&polys, &forest, 3, DEFAULT_CUT_LIMIT).expect_err("floor 4");
        assert_eq!(
            err,
            TreeError::BoundUnattainable {
                bound: 3,
                best_possible: 4
            }
        );
    }

    #[test]
    fn parallel_matches_serial_for_every_bound_and_thread_count() {
        let (polys, forest) = example_13();
        for bound in 3..=14 {
            let serial = brute_force_vvs(&polys, &forest, bound, DEFAULT_CUT_LIMIT);
            for threads in [1, 2, 4, 16] {
                let parallel =
                    brute_force_vvs_parallel(&polys, &forest, bound, DEFAULT_CUT_LIMIT, threads);
                match (&serial, &parallel) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.compressed_size_v, b.compressed_size_v,
                            "bound {bound}, threads {threads}"
                        );
                        assert_eq!(
                            a.vvs.labels(&a.forest),
                            b.vvs.labels(&b.forest),
                            "deterministic tie-break at bound {bound}, threads {threads}"
                        );
                    }
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb, "bound {bound}"),
                    (a, b) => panic!("bound {bound}: serial {a:?} vs parallel {b:?}"),
                }
            }
        }
    }

    #[test]
    fn parallel_respects_cut_limit() {
        let (polys, forest) = example_13();
        let err = brute_force_vvs_parallel(&polys, &forest, 9, 3, 4).expect_err("limit 3");
        assert!(matches!(err, TreeError::SearchSpaceTooLarge { .. }));
    }
}
