#![warn(missing_docs)]
//! The provenance-abstraction optimization problem and its algorithms.
//!
//! This crate is the paper's primary contribution (§2.4–§3 and the
//! appendix):
//!
//! * [`problem`] — precise / adequate / optimal abstractions (Def. 7),
//!   instance evaluation and result types,
//! * [`loss`] — monomial loss `ML` and variable loss `VL`, both the naive
//!   definition and the efficient `D_P` remainder-map computation of §4.1,
//! * [`optimal`] — Algorithm 1: the optimal single-tree selection via
//!   bottom-up dynamic programming (PTIME, Prop. 12/14). The sparse
//!   hash-map variant of §4.1 is the default; a dense reference
//!   implementation is kept for testing and ablation,
//! * [`greedy`] — Algorithm 2: the greedy multi-tree heuristic. The
//!   default engine is *incremental*: candidate scores are cached,
//!   bucketed by variable loss and delta-maintained over an interned
//!   working set; the paper's full-rescan transcription is kept as a
//!   reference engine for tests and ablations,
//! * [`brute`] — exhaustive search over all cuts (the evaluation's
//!   brute-force baseline),
//! * [`competitor`] — a tree-oracle adaptation of the pairwise-merge
//!   summarization of Ainy et al. (CIKM'15), the paper's `[3]`,
//! * [`decision`] — the decision problem (Def. 10): existence of a
//!   *precise* abstraction for a size `B` and granularity `K`,
//! * [`hardness`] — the NP-hardness apparatus of Appendix A: uniformly
//!   partitioned polynomials, flat abstractions and the reduction from
//!   Vertex Cover,
//! * [`online`] — the sampling-based online compression scheme the paper
//!   sketches as future work in §6, implemented end to end (sampling,
//!   bound adaptation, size extrapolation),
//! * [`shard`] — sharded multi-core compression (size-balanced
//!   partitioning, concurrent per-shard greedy traces, k-way frontier
//!   merge) and the bounded-memory streaming ingest path for
//!   larger-than-RAM provenance.

pub mod brute;
pub mod competitor;
pub mod decision;
pub mod greedy;
pub mod hardness;
pub mod loss;
pub mod online;
pub mod optimal;
pub mod problem;
pub mod shard;

pub use greedy::{greedy_vvs, greedy_vvs_guarded, greedy_vvs_reference};
pub use optimal::{optimal_vvs, optimal_vvs_dense, optimal_vvs_guarded};
pub use problem::{evaluate_vvs, AbstractionResult};
