//! Online compression via sampling — the extension sketched in §6.
//!
//! The paper's algorithms take fully materialised provenance; §6 proposes
//! compressing *on the fly*: "generate only a sample of the provenance,
//! apply our algorithms to the sample, and obtain a choice of Valid
//! Variable Set. Then use the same VVS to group variables in the full
//! input database". Two gaps are identified there and realised here:
//!
//! 1. **Sampling** ([`sample_polys`]): the heuristic "tailored for simple
//!    GROUPBY queries" — sample whole output polynomials (each output
//!    group corresponds to rows of the relation holding the grouping
//!    attribute, so sampling groups approximates sampling that relation
//!    while leaving the other relations intact).
//! 2. **Bound adaptation** ([`adapt_bound`]): "set this bound as a
//!    function of (1) the original bound and (2) the ratio between the
//!    full provenance size and the sample provenance size, e.g. the first
//!    multiplied by the second", with the full size estimated by
//!    extrapolation from growing samples ([`estimate_full_size`],
//!    following the paper's pointer to extrapolation methods).

use crate::greedy::{greedy_vvs_guarded, greedy_vvs_interned_guarded};
use crate::optimal::{optimal_vvs_guarded, optimal_vvs_interned_guarded};
use crate::problem::{evaluate_vvs, evaluate_vvs_interned, AbstractionResult, InternedAbstraction};
use provabs_provenance::coeff::Coefficient;
use provabs_provenance::guard::{Completion, Guard};
use provabs_provenance::polynomial::Polynomial;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::working::WorkingSet;
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;

/// Which offline algorithm the online wrapper drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Solver {
    /// Algorithm 1 (single tree).
    Optimal,
    /// Algorithm 2 (any forest).
    Greedy,
}

/// The index-level sampling core shared by [`sample_polys`] and the
/// interned path: roughly `fraction` of `0..len` (at least one index when
/// `len > 0`), deterministically in `seed`. One RNG draw per index, so
/// every representation samples the *same* polynomials.
pub fn sample_indices(len: usize, fraction: f64, seed: u64) -> Vec<usize> {
    assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let picked: Vec<usize> = (0..len)
        .filter(|_| (next() % 1_000_000) as f64 / 1_000_000.0 < fraction)
        .collect();
    if picked.is_empty() && len > 0 {
        // Degenerate draw: keep the first polynomial so the sample is
        // never empty.
        return vec![0];
    }
    picked
}

/// Samples roughly `fraction` of the polynomials (at least one),
/// deterministically in `seed`. This models sampling "from the relations
/// that include the grouping attributes, leaving the other relations
/// intact": each output polynomial is one group.
pub fn sample_polys<C: Coefficient>(polys: &PolySet<C>, fraction: f64, seed: u64) -> PolySet<C> {
    let slice = polys.as_slice();
    PolySet::from_vec(
        sample_indices(polys.len(), fraction, seed)
            .into_iter()
            .map(|i| slice[i].clone())
            .collect::<Vec<Polynomial<C>>>(),
    )
}

/// §6's bound adaptation: the original bound scaled by the
/// sample-to-full size ratio (clamped to at least 1).
pub fn adapt_bound(bound: usize, full_size_m: usize, sample_size_m: usize) -> usize {
    if full_size_m == 0 {
        return bound.max(1);
    }
    let ratio = sample_size_m as f64 / full_size_m as f64;
    ((bound as f64 * ratio).round() as usize).max(1)
}

/// Estimates the full provenance size by least-squares extrapolation of
/// `(sampling fraction, observed |sample|_M)` points to fraction 1.0 —
/// the paper's "perform multiple samples of increasing sizes … and
/// extrapolate".
pub fn extrapolate_size(points: &[(f64, usize)]) -> usize {
    assert!(!points.is_empty(), "need at least one sample point");
    if points.len() == 1 {
        let (f, m) = points[0];
        return (m as f64 / f.max(1e-9)).round() as usize;
    }
    // Least squares for m ≈ a·f + b, evaluated at f = 1.
    let n = points.len() as f64;
    let sum_f: f64 = points.iter().map(|&(f, _)| f).sum();
    let sum_m: f64 = points.iter().map(|&(_, m)| m as f64).sum();
    let sum_ff: f64 = points.iter().map(|&(f, _)| f * f).sum();
    let sum_fm: f64 = points.iter().map(|&(f, m)| f * m as f64).sum();
    let denom = n * sum_ff - sum_f * sum_f;
    if denom.abs() < 1e-12 {
        return (sum_m / sum_f.max(1e-9)).round() as usize;
    }
    let a = (n * sum_fm - sum_f * sum_m) / denom;
    let b = (sum_m - a * sum_f) / n;
    (a + b).round().max(1.0) as usize
}

/// Estimates the full size from samples at the given fractions.
pub fn estimate_full_size<C: Coefficient>(
    polys: &PolySet<C>,
    fractions: &[f64],
    seed: u64,
) -> usize {
    let points: Vec<(f64, usize)> = fractions
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, sample_polys(polys, f, seed + i as u64).size_m()))
        .collect();
    extrapolate_size(&points)
}

/// The outcome of one online-compression run.
#[derive(Clone, Debug)]
pub struct OnlineOutcome {
    /// Sizes of the sample the VVS was chosen on.
    pub sample_size_m: usize,
    /// The bound handed to the offline algorithm on the sample.
    pub adapted_bound: usize,
    /// The chosen VVS evaluated against the *full* provenance.
    pub full: AbstractionResult,
}

/// §6's end-to-end scheme: sample, adapt the bound, choose a VVS on the
/// sample with the requested solver, then apply that VVS to the full
/// provenance and report the real outcome.
///
/// Both the solver run on the sample and the final full-provenance
/// measurement go through the shared interned working set
/// ([`provabs_provenance::working::WorkingSet`], via the greedy engine
/// and [`evaluate_vvs`]) — the full provenance is never re-substituted
/// monomial-by-monomial here.
///
/// The returned result may be inadequate for the original bound — that is
/// the scheme's inherent risk ("this sample is still not guaranteed to be
/// representative"); callers check [`AbstractionResult::is_adequate_for`]
/// and the experiment binary quantifies how often that happens.
pub fn online_compress<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
    fraction: f64,
    seed: u64,
    solver: Solver,
) -> Result<OnlineOutcome, TreeError> {
    let guard = Guard::ambient().unwrap_or_default();
    online_compress_guarded(polys, forest, bound, fraction, seed, solver, &guard)
        .map(|(outcome, _)| outcome)
}

/// [`online_compress`] under an execution [`Guard`], which is handed
/// through to the inner solver: a trip mid-solve surfaces the solver's
/// anytime result (greedy prefix, or the optimal DP's identity
/// fallback) as the sampled VVS, tagged [`Completion::Interrupted`].
#[allow(clippy::too_many_arguments)]
pub fn online_compress_guarded<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
    fraction: f64,
    seed: u64,
    solver: Solver,
    guard: &Guard,
) -> Result<(OnlineOutcome, Completion), TreeError> {
    let sample = sample_polys(polys, fraction, seed);
    let adapted = adapt_bound(bound, polys.size_m(), sample.size_m());
    let (on_sample, completion) = match solver {
        Solver::Optimal => optimal_vvs_guarded(&sample, forest, adapted, guard)?,
        Solver::Greedy => greedy_vvs_guarded(&sample, forest, adapted, guard)?,
    };
    // Re-evaluate the chosen VVS against the full provenance. The VVS
    // lives on the sample-cleaned forest; variables absent from the
    // sample but present in the full set stay unabstracted, exactly as
    // the scheme prescribes.
    let full = evaluate_vvs(polys, &on_sample.forest, on_sample.vvs);
    Ok((
        OnlineOutcome {
            sample_size_m: sample.size_m(),
            adapted_bound: adapted,
            full,
        },
        completion,
    ))
}

/// The outcome of one interned online-compression run: like
/// [`OnlineOutcome`], but the full-provenance evaluation is carried as an
/// [`InternedAbstraction`], ready to freeze.
#[derive(Clone, Debug)]
pub struct OnlineOutcomeInterned<C> {
    /// Sizes of the sample the VVS was chosen on.
    pub sample_size_m: usize,
    /// The bound handed to the offline algorithm on the sample.
    pub adapted_bound: usize,
    /// The chosen VVS evaluated against the *full* provenance, with the
    /// abstracted working set attached.
    pub full: InternedAbstraction<C>,
}

/// [`online_compress`] in the interned currency end-to-end: the sample is
/// a *compacted* working-set [`subset`](WorkingSet::subset) — a fresh
/// arena holding only the sampled polynomials' monomials (same
/// deterministic draw as [`sample_polys`]; sample ids are local to the
/// sample, not valid against `source`'s arena) — the solver runs its
/// interned entry point, and the final full-provenance measurement is an
/// id-space substitution on `source`. Chosen VVS and all measures are
/// identical to [`online_compress`] on the materialised poly-set.
pub fn online_compress_interned<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    bound: usize,
    fraction: f64,
    seed: u64,
    solver: Solver,
) -> Result<OnlineOutcomeInterned<C>, TreeError> {
    let guard = Guard::ambient().unwrap_or_default();
    online_compress_interned_guarded(source, forest, bound, fraction, seed, solver, &guard)
        .map(|(outcome, _)| outcome)
}

/// [`online_compress_interned`] under an execution [`Guard`]; the guard
/// is handed to the inner solver and its completion status is bubbled
/// alongside the outcome.
#[allow(clippy::too_many_arguments)]
pub fn online_compress_interned_guarded<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    bound: usize,
    fraction: f64,
    seed: u64,
    solver: Solver,
    guard: &Guard,
) -> Result<(OnlineOutcomeInterned<C>, Completion), TreeError> {
    let indices = sample_indices(source.num_polys(), fraction, seed);
    let sample = source.subset(&indices);
    let sample_size_m = sample.size_m();
    let adapted = adapt_bound(bound, source.size_m(), sample_size_m);
    let (on_sample, completion) = match solver {
        Solver::Optimal => optimal_vvs_interned_guarded(&sample, forest, adapted, guard)?,
        Solver::Greedy => greedy_vvs_interned_guarded(&sample, forest, adapted, guard)?,
    };
    let full = evaluate_vvs_interned(
        source.clone(),
        &on_sample.result.forest,
        on_sample.result.vvs,
    );
    Ok((
        OnlineOutcomeInterned {
            sample_size_m,
            adapted_bound: adapted,
            full,
        },
        completion,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::optimal_vvs;
    use provabs_provenance::monomial::Monomial;
    use provabs_provenance::var::{VarId, VarTable};
    use provabs_trees::builder::TreeBuilder;

    /// Many structurally-identical polynomials over a shared variable
    /// pool — the regime where a sample is representative.
    fn uniform_instance() -> (PolySet<f64>, Forest) {
        let mut vars = VarTable::new();
        let leaves: Vec<VarId> = (0..8).map(|i| vars.intern(&format!("x{i}"))).collect();
        let ctx: Vec<VarId> = (0..4).map(|i| vars.intern(&format!("c{i}"))).collect();
        let mut polys = Vec::new();
        for p in 0..40 {
            let mut poly = Polynomial::zero();
            for (i, &l) in leaves.iter().enumerate() {
                poly.add_term(Monomial::from_vars([l, ctx[(p + i) % 4]]), 1.0 + p as f64);
            }
            polys.push(poly);
        }
        let tree = TreeBuilder::new("X")
            .child("X", "lo")
            .child("X", "hi")
            .leaves("lo", (0..4).map(|i| format!("x{i}")))
            .leaves("hi", (4..8).map(|i| format!("x{i}")))
            .build(&mut vars)
            .expect("tree");
        (PolySet::from_vec(polys), Forest::single(tree))
    }

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let (polys, _) = uniform_instance();
        let a = sample_polys(&polys, 0.3, 9);
        let b = sample_polys(&polys, 0.3, 9);
        assert_eq!(a.len(), b.len());
        assert!(a.len() < polys.len());
        assert!(!a.is_empty());
        let c = sample_polys(&polys, 0.0, 9);
        assert_eq!(c.len(), 1, "never empty");
        let d = sample_polys(&polys, 1.0, 9);
        assert_eq!(d.len(), polys.len());
    }

    #[test]
    fn bound_adaptation_scales_by_ratio() {
        assert_eq!(adapt_bound(100, 1000, 250), 25);
        assert_eq!(adapt_bound(100, 1000, 1000), 100);
        assert_eq!(adapt_bound(1, 1000, 10), 1, "clamped to 1");
        assert_eq!(adapt_bound(5, 0, 0), 5);
    }

    #[test]
    fn extrapolation_recovers_linear_growth() {
        // Perfectly linear: m = 1000·f.
        let points: Vec<(f64, usize)> = [0.1, 0.2, 0.4]
            .iter()
            .map(|&f| (f, (1000.0 * f) as usize))
            .collect();
        let est = extrapolate_size(&points);
        assert!((est as i64 - 1000).abs() <= 1, "got {est}");
        // Single point falls back to proportional scaling.
        assert_eq!(extrapolate_size(&[(0.25, 250)]), 1000);
    }

    #[test]
    fn estimate_is_close_on_uniform_polynomials() {
        let (polys, _) = uniform_instance();
        let est = estimate_full_size(&polys, &[0.2, 0.4, 0.6], 3);
        let real = polys.size_m();
        let rel = (est as f64 - real as f64).abs() / real as f64;
        assert!(rel < 0.35, "estimate {est} vs real {real}");
    }

    #[test]
    fn online_vvs_matches_offline_on_uniform_instance() {
        // With identical polynomial structure the sample sees the same
        // merge opportunities, so the online VVS equals the offline one.
        let (polys, forest) = uniform_instance();
        let bound = polys.size_m() / 2;
        let offline = optimal_vvs(&polys, &forest, bound).expect("attainable");
        let online =
            online_compress(&polys, &forest, bound, 0.3, 5, Solver::Optimal).expect("sampled");
        assert!(online.full.is_adequate_for(bound));
        assert_eq!(
            online.full.vvs.labels(&online.full.forest),
            offline.vvs.labels(&offline.forest)
        );
        assert!(online.sample_size_m < polys.size_m());
        assert!(online.adapted_bound < bound);
    }

    #[test]
    fn online_greedy_solver_works() {
        let (polys, forest) = uniform_instance();
        let bound = polys.size_m() / 2;
        let online =
            online_compress(&polys, &forest, bound, 0.5, 11, Solver::Greedy).expect("sampled");
        online
            .full
            .vvs
            .validate(&online.full.forest)
            .expect("valid VVS");
        assert!(online.full.is_adequate_for(bound));
    }

    #[test]
    #[should_panic(expected = "fraction in [0, 1]")]
    fn invalid_fraction_panics() {
        let (polys, _) = uniform_instance();
        let _ = sample_polys(&polys, 1.5, 0);
    }

    #[test]
    fn interned_entry_point_matches_polyset_entry_point() {
        let (polys, forest) = uniform_instance();
        let source = WorkingSet::from_polyset(&polys);
        let bound = polys.size_m() / 2;
        for solver in [Solver::Optimal, Solver::Greedy] {
            let by_polys =
                online_compress(&polys, &forest, bound, 0.3, 5, solver).expect("sampled");
            let by_ws =
                online_compress_interned(&source, &forest, bound, 0.3, 5, solver).expect("sampled");
            assert_eq!(by_polys.sample_size_m, by_ws.sample_size_m);
            assert_eq!(by_polys.adapted_bound, by_ws.adapted_bound);
            assert_eq!(by_polys.full.vvs, by_ws.full.result.vvs);
            assert_eq!(
                by_polys.full.compressed_size_m,
                by_ws.full.result.compressed_size_m
            );
            assert_eq!(
                by_polys.full.compressed_size_v,
                by_ws.full.result.compressed_size_v
            );
            assert_eq!(
                by_ws.full.working.size_m(),
                by_ws.full.result.compressed_size_m
            );
        }
    }

    #[test]
    fn sample_indices_mirror_sample_polys() {
        let (polys, _) = uniform_instance();
        let idx = sample_indices(polys.len(), 0.3, 9);
        let sampled = sample_polys(&polys, 0.3, 9);
        assert_eq!(idx.len(), sampled.len());
        assert_eq!(sample_indices(0, 0.5, 1), Vec::<usize>::new());
        assert_eq!(sample_indices(5, 0.0, 1), vec![0], "never empty");
    }
}
