//! NP-hardness apparatus (Appendix A).
//!
//! The decision problem is NP-hard already for abstraction trees of height
//! two and a single polynomial whose monomials contain exactly two
//! variables. The proof reduces Vertex Cover to the existence of a precise
//! abstraction over a *uniformly partitioned polynomial* `P⟨X, n, I⟩`
//! (Def. 16) with its *flat abstraction* forest (Def. 20):
//!
//! * each graph node `v_a` becomes a meta-variable `x(a)` with `n` copies
//!   `x(a)_1 .. x(a)_n`,
//! * each edge `(v_a, v_b)` becomes the `n²` monomials
//!   `x(a)_i · x(b)_j`,
//! * `G` has a vertex cover of size `k` iff `P⟨X, |V|³, I⟩` has a precise
//!   abstraction for some `B ∈ {2..|V|⁵}` and
//!   `K = (|V|−k)·|V|³ + k` (Lemma 29).
//!
//! This module builds those objects, provides the closed-form size
//! accounting of Claims 18 and 23, a brute-force Vertex Cover solver, and
//! a fast flat-abstraction decision procedure used by the tests to verify
//! the reduction end-to-end.

// The `for a in 1..=x { in_y[a] = … }` loops mirror the paper's 1-based
// metavariable indexing (slot 0 deliberately unused).
#![allow(clippy::needless_range_loop)]

use provabs_provenance::monomial::Monomial;
use provabs_provenance::polynomial::Polynomial;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::var::{VarId, VarTable};
use provabs_trees::builder::TreeBuilder;
use provabs_trees::forest::Forest;

/// A simple undirected graph for the Vertex Cover side of the reduction.
#[derive(Clone, Debug)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph on nodes `0..n`. Self-loops are rejected, duplicate
    /// and reversed edges are normalised away.
    pub fn new(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut es: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(a, b)| {
                assert!(a != b, "self-loops are excluded (Thm. 28)");
                assert!(a < n && b < n, "edge endpoint out of range");
                (a.min(b), a.max(b))
            })
            .collect();
        es.sort_unstable();
        es.dedup();
        Self { n, edges: es }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The normalised edge list.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Whether `cover` (a node set) touches every edge.
    pub fn is_vertex_cover(&self, cover: &[bool]) -> bool {
        self.edges.iter().all(|&(a, b)| cover[a] || cover[b])
    }

    /// Brute-force: does a vertex cover of size exactly `k` exist?
    /// (Any cover of size < k extends to one of size k, so this equals
    /// "of size ≤ k" for k ≤ n.)
    pub fn has_vertex_cover_of_size(&self, k: usize) -> bool {
        assert!(self.n <= 24, "brute-force solver is for small graphs");
        if k > self.n {
            return false;
        }
        (0u32..(1 << self.n))
            .filter(|m| m.count_ones() as usize == k)
            .any(|m| {
                let cover: Vec<bool> = (0..self.n).map(|i| m & (1 << i) != 0).collect();
                self.is_vertex_cover(&cover)
            })
    }

    /// Size of a minimum vertex cover (brute force).
    pub fn min_vertex_cover_size(&self) -> usize {
        (0..=self.n)
            .find(|&k| self.has_vertex_cover_of_size(k))
            .expect("the full node set always covers")
    }
}

/// Variable name of the copy `x(a)_i` (1-indexed like the paper).
pub fn copy_name(a: usize, i: usize) -> String {
    format!("x{a}_{i}")
}

/// Meta-variable name `x(a)`.
pub fn meta_name(a: usize) -> String {
    format!("x{a}")
}

/// Builds the uniformly partitioned polynomial `P⟨X, n, I⟩` of Def. 16:
/// `P = Σ_{(a,b)∈I} Σ_{i,j ∈ 1..n} x(a)_i · x(b)_j`, all coefficients 1.
///
/// `pairs` uses 1-based metavariable indexes `1..=x_count` with `a < b`,
/// exactly as in the paper's examples.
pub fn uniformly_partitioned(
    vars: &mut VarTable,
    x_count: usize,
    n: usize,
    pairs: &[(usize, usize)],
) -> PolySet<f64> {
    // Intern all copies first so ids are contiguous per metavariable.
    let ids: Vec<Vec<VarId>> = (1..=x_count)
        .map(|a| (1..=n).map(|i| vars.intern(&copy_name(a, i))).collect())
        .collect();
    let mut p = Polynomial::zero();
    for &(a, b) in pairs {
        assert!(a < b, "Def. 16 requires a < b");
        assert!(b <= x_count, "pair index out of range");
        for i in 0..n {
            for j in 0..n {
                p.add_term(Monomial::from_vars([ids[a - 1][i], ids[b - 1][j]]), 1.0);
            }
        }
    }
    PolySet::from_vec(vec![p])
}

/// Builds the flat abstraction forest of Def. 20: one height-one tree per
/// metavariable, `x(a)` over `x(a)_1 .. x(a)_n`.
pub fn flat_abstraction(vars: &mut VarTable, x_count: usize, n: usize) -> Forest {
    let trees = (1..=x_count)
        .map(|a| {
            TreeBuilder::new(meta_name(a))
                .leaves(meta_name(a), (1..=n).map(|i| copy_name(a, i)))
                .build(vars)
                .expect("flat tree labels are unique")
        })
        .collect();
    Forest::new(trees).expect("flat trees are disjoint")
}

/// Claim 18: `|P|_M = |I|·n²`, `|P|_V = |X|·n`.
pub fn claim_18_sizes(x_count: usize, n: usize, num_pairs: usize) -> (usize, usize) {
    (num_pairs * n * n, x_count * n)
}

/// Claim 23: sizes after abstracting exactly the metavariable set `Y`
/// (given as a membership bitmap over `1..=x_count`, index 0 unused):
///
/// * each pair `(i, j)` contributes 1 monomial if both ends are in `Y`,
///   `n²` if neither is, and `n` otherwise;
/// * `|P↓S|_V = |Y| + (|X| − |Y|)·n`.
pub fn claim_23_sizes(
    x_count: usize,
    n: usize,
    pairs: &[(usize, usize)],
    in_y: &[bool],
) -> (usize, usize) {
    let m = pairs
        .iter()
        .map(|&(a, b)| match (in_y[a], in_y[b]) {
            (true, true) => 1,
            (false, false) => n * n,
            _ => n,
        })
        .sum();
    let y = in_y.iter().filter(|&&b| b).count();
    (m, y + (x_count - y) * n)
}

/// The full Vertex-Cover reduction of Lemma 29 for a graph `G` and cover
/// size `k`.
#[derive(Debug)]
pub struct VcReduction {
    /// The uniformly partitioned polynomial (blow-up `n = |V|³`).
    pub polys: PolySet<f64>,
    /// Its flat abstraction forest.
    pub forest: Forest,
    /// The pairs `I` (1-based, `a < b`).
    pub pairs: Vec<(usize, usize)>,
    /// Number of metavariables `|X| = |V|`.
    pub x_count: usize,
    /// The blow-up factor `n = |V|³`.
    pub blowup: usize,
    /// The target granularity `K = (|V|−k)·|V|³ + k`.
    pub granularity: usize,
    /// The size range `B ∈ {2..|V|⁵}` of the lemma.
    pub bound_range: (usize, usize),
}

/// Builds the reduction instance. The graph must satisfy Thm. 28's
/// conditions (≥ 2 nodes, ≥ 1 edge, no self-loops).
pub fn reduce_vertex_cover(vars: &mut VarTable, g: &Graph, k: usize) -> VcReduction {
    let v = g.num_nodes();
    assert!(v >= 2 && !g.edges().is_empty(), "Thm. 28 preconditions");
    let blowup = v * v * v;
    let pairs: Vec<(usize, usize)> = g.edges().iter().map(|&(a, b)| (a + 1, b + 1)).collect();
    let polys = uniformly_partitioned(vars, v, blowup, &pairs);
    let forest = flat_abstraction(vars, v, blowup);
    VcReduction {
        polys,
        forest,
        pairs,
        x_count: v,
        blowup,
        granularity: (v - k) * blowup + k,
        bound_range: (2, v.pow(5)),
    }
}

/// Decides, via the Claim 23 closed form, whether the flat-abstraction
/// instance admits a precise abstraction with `|P↓S|_M = B` and
/// `|P↓S|_V = K` — enumerating the `2^|X|` choices of `Y` without
/// materialising any polynomial.
pub fn decide_precise_flat(
    x_count: usize,
    n: usize,
    pairs: &[(usize, usize)],
    size_b: usize,
    granularity_k: usize,
) -> bool {
    assert!(x_count <= 25, "closed-form enumeration is for small X");
    (0u32..(1 << x_count)).any(|mask| {
        let mut in_y = vec![false; x_count + 1];
        for a in 1..=x_count {
            in_y[a] = mask & (1 << (a - 1)) != 0;
        }
        claim_23_sizes(x_count, n, pairs, &in_y) == (size_b, granularity_k)
    })
}

/// Lemma 29, forward direction test helper: whether the reduction instance
/// admits a precise abstraction for *some* `B` in the lemma's range with
/// the lemma's `K`.
pub fn reduction_answer(g: &Graph, k: usize) -> bool {
    let v = g.num_nodes();
    let blowup = v * v * v;
    let pairs: Vec<(usize, usize)> = g.edges().iter().map(|&(a, b)| (a + 1, b + 1)).collect();
    let granularity = (v - k) * blowup + k;
    // B ∈ {2 .. |V|⁵}: enumerate Y once and check its (m, v) lands in
    // range with the right granularity.
    (0u32..(1 << v)).any(|mask| {
        let mut in_y = vec![false; v + 1];
        for a in 1..=v {
            in_y[a] = mask & (1 << (a - 1)) != 0;
        }
        let (m, vv) = claim_23_sizes(v, blowup, &pairs, &in_y);
        vv == granularity && (2..=v.pow(5)).contains(&m)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::decide_precise;

    /// Example 17's instance: X = 4 metavariables, n = 3,
    /// I = {(1,2), (1,3), (2,3), (2,4)}.
    fn example_17(vars: &mut VarTable) -> (PolySet<f64>, Vec<(usize, usize)>) {
        let pairs = vec![(1, 2), (1, 3), (2, 3), (2, 4)];
        let polys = uniformly_partitioned(vars, 4, 3, &pairs);
        (polys, pairs)
    }

    #[test]
    fn example_19_sizes() {
        let mut vars = VarTable::new();
        let (polys, pairs) = example_17(&mut vars);
        // Claim 18: |P|_M = 4·3² = 36, |P|_V = 4·3 = 12.
        assert_eq!(polys.size_m(), 36);
        assert_eq!(polys.size_v(), 12);
        assert_eq!(claim_18_sizes(4, 3, pairs.len()), (36, 12));
    }

    #[test]
    fn example_24_abstraction_sizes() {
        // Y = {x(1), x(3)}: P↓S = 3 + 1 + 3 + 9 = 16 monomials,
        // 2 + 2·3 = 8 variables.
        let mut vars = VarTable::new();
        let (polys, pairs) = example_17(&mut vars);
        let forest = flat_abstraction(&mut vars, 4, 3);
        let in_y = [false, true, false, true, false]; // 1-indexed
        assert_eq!(claim_23_sizes(4, 3, &pairs, &in_y), (16, 8));
        // Cross-check against an actual application.
        let vvs = provabs_trees::cut::Vvs::from_labels(
            &forest,
            &vars,
            &["x1", "x2_1", "x2_2", "x2_3", "x3", "x4_1", "x4_2", "x4_3"],
        )
        .expect("labels");
        vvs.validate(&forest).expect("valid");
        let down = vvs.apply(&polys, &forest);
        assert_eq!(down.size_m(), 16);
        assert_eq!(down.size_v(), 8);
    }

    #[test]
    fn claim_23_matches_application_for_every_y() {
        let mut vars = VarTable::new();
        let (polys, pairs) = example_17(&mut vars);
        let forest = flat_abstraction(&mut vars, 4, 3);
        for mask in 0u32..16 {
            let mut in_y = vec![false; 5];
            let mut labels: Vec<String> = Vec::new();
            for a in 1..=4 {
                if mask & (1 << (a - 1)) != 0 {
                    in_y[a] = true;
                    labels.push(meta_name(a));
                } else {
                    labels.extend((1..=3).map(|i| copy_name(a, i)));
                }
            }
            let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            let vvs = provabs_trees::cut::Vvs::from_labels(&forest, &vars, &refs).expect("labels");
            let down = vvs.apply(&polys, &forest);
            assert_eq!(
                claim_23_sizes(4, 3, &pairs, &in_y),
                (down.size_m(), down.size_v()),
                "mask {mask:04b}"
            );
        }
    }

    #[test]
    fn claim_25_positive_size() {
        // Coefficients are positive so abstraction never cancels monomials.
        let mut vars = VarTable::new();
        let (polys, _) = example_17(&mut vars);
        let forest = flat_abstraction(&mut vars, 4, 3);
        let vvs = provabs_trees::cut::Vvs::from_labels(&forest, &vars, &["x1", "x2", "x3", "x4"])
            .expect("labels");
        let down = vvs.apply(&polys, &forest);
        assert!(down.size_m() > 0);
    }

    #[test]
    fn reduction_agrees_with_vertex_cover_small_graphs() {
        // Triangle: min VC = 2. Path a-b-c: min VC = 1. Square: min VC = 2.
        let graphs = [
            Graph::new(3, [(0, 1), (1, 2), (0, 2)]),
            Graph::new(3, [(0, 1), (1, 2)]),
            Graph::new(4, [(0, 1), (1, 2), (2, 3), (3, 0)]),
            Graph::new(4, [(0, 1), (0, 2), (0, 3)]),
        ];
        for g in &graphs {
            for k in 1..g.num_nodes() {
                assert_eq!(
                    g.has_vertex_cover_of_size(k),
                    reduction_answer(g, k),
                    "graph {:?} k={k}",
                    g.edges()
                );
            }
        }
    }

    #[test]
    fn reduction_matches_generic_decision_solver() {
        // Small enough to run the real (exponential) decision procedure:
        // |V| = 3, blow-up overridden to 2 via the raw builders would break
        // the lemma's arithmetic, so use the real |V|³ = 27 but check a
        // specific Y against decide_precise on a *scaled-down* instance
        // where the closed form is verified separately above. Here: path
        // graph, blow-up 2 (illustrative), full enumeration.
        let mut vars = VarTable::new();
        let pairs = vec![(1, 2), (2, 3)];
        let polys = uniformly_partitioned(&mut vars, 3, 2, &pairs);
        let forest = flat_abstraction(&mut vars, 3, 2);
        for mask in 0u32..8 {
            let mut in_y = vec![false; 4];
            for a in 1..=3 {
                in_y[a] = mask & (1 << (a - 1)) != 0;
            }
            let (m, v) = claim_23_sizes(3, 2, &pairs, &in_y);
            assert!(
                decide_precise(&polys, &forest, m, v, 100).expect("small"),
                "closed-form point (m={m}, v={v}) must be realisable"
            );
        }
        // And a point no Y realises: B = |P|_M − 1 keeps all variables? No
        // abstraction yields 7 monomials with full granularity 6.
        assert!(!decide_precise(&polys, &forest, 7, 6, 100).expect("small"));
    }

    #[test]
    fn graph_normalisation() {
        let g = Graph::new(3, [(1, 0), (0, 1), (2, 1)]);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(g.min_vertex_cover_size(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let _ = Graph::new(2, [(0, 0)]);
    }

    #[test]
    fn reduce_vertex_cover_builds_lemma_29_instance() {
        let mut vars = VarTable::new();
        let g = Graph::new(2, [(0, 1)]);
        let r = reduce_vertex_cover(&mut vars, &g, 1);
        assert_eq!(r.blowup, 8);
        assert_eq!(r.polys.size_m(), 64); // 1 edge × 8²
        assert_eq!(r.polys.size_v(), 16);
        assert_eq!(r.granularity, 8 + 1);
        assert_eq!(r.bound_range, (2, 32));
        assert_eq!(r.forest.num_trees(), 2);
    }
}
