//! The decision problem (Def. 10): existence of a *precise* abstraction.
//!
//! Given `𝒫`, a compatible forest `𝒯`, a size `B` and a granularity `K`,
//! decide whether some VVS `S` satisfies `|𝒫↓S|_M = B` **and**
//! `|𝒫↓S|_V = K`. The problem is NP-hard in general (Prop. 11, proved in
//! [`crate::hardness`]); the solver here is the straightforward
//! exponential enumeration, usable on small instances and as the test
//! oracle for the reduction.

use crate::loss::TreeLoss;
use provabs_provenance::coeff::Coefficient;
use provabs_provenance::fxhash::FxHashSet;
use provabs_provenance::polyset::PolySet;
use provabs_trees::cut::enumerate_forest_cuts;
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;

/// Decides Def. 10 by exhaustive enumeration (exponential; refuses forests
/// with more than `cut_limit` cuts).
///
/// Unlike the optimization entry points this does **not** clean the
/// forest: the decision problem is stated for a compatible forest, and
/// cleaning would change `VL` accounting. Incompatible inputs error.
pub fn decide_precise<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    size_b: usize,
    granularity_k: usize,
    cut_limit: u128,
) -> Result<bool, TreeError> {
    forest.check_compatible(polys)?;
    let cuts = forest.count_cuts();
    if cuts > cut_limit {
        return Err(TreeError::SearchSpaceTooLarge {
            cuts,
            limit: cut_limit,
        });
    }
    let all = enumerate_forest_cuts(forest, cut_limit as usize, cut_limit)
        .expect("count checked against limit");
    for vvs in all {
        let down = vvs.apply(polys, forest);
        if down.size_m() == size_b && down.size_v() == granularity_k {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Decides Def. 10 for a *single-tree* forest in polynomial time.
///
/// The NP-hardness of Prop. 11 needs multiple trees; with one tree the
/// loss pairs are additive over disjoint subtrees, so a bottom-up DP over
/// the *set of achievable `(ML, VL)` pairs* decides precision exactly:
/// `pairs(leaf) = {(0, 0)}`, `pairs(v) = (⊕ over children) ∪
/// {(ML({v}), VL({v}))}` where `⊕` is the pairwise sumset. Each set holds
/// at most `(|𝒫|_M + 1)·(|𝒫|_V + 1)` pairs, so the procedure is PTIME —
/// the single-tree counterpart of Prop. 12 on the decision side.
pub fn decide_precise_single_tree<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    size_b: usize,
    granularity_k: usize,
) -> Result<bool, TreeError> {
    forest.check_compatible(polys)?;
    if forest.num_trees() != 1 {
        return Err(TreeError::ExpectedSingleTree(forest.num_trees()));
    }
    let total_m = polys.size_m();
    let total_v = polys.size_v();
    if size_b > total_m || granularity_k > total_v {
        return Ok(false);
    }
    let (target_ml, target_vl) = (total_m - size_b, total_v - granularity_k);

    let tree = forest.tree(0);
    let loss = TreeLoss::build(polys, tree);
    let mut pair_sets: Vec<FxHashSet<(usize, usize)>> =
        vec![FxHashSet::default(); tree.num_nodes()];
    for v in tree.postorder() {
        let mut set = FxHashSet::default();
        if tree.is_leaf(v) {
            set.insert((0, 0));
        } else {
            // Sumset over the children, pruned to the target box.
            let mut acc: FxHashSet<(usize, usize)> = FxHashSet::default();
            acc.insert((0, 0));
            for &c in tree.children(v) {
                let child = &pair_sets[c.index()];
                let mut next = FxHashSet::default();
                for &(am, av) in &acc {
                    for &(bm, bv) in child {
                        let p = (am + bm, av + bv);
                        if p.0 <= target_ml && p.1 <= target_vl {
                            next.insert(p);
                        }
                    }
                }
                acc = next;
            }
            set = acc;
            let own = (loss.ml_of(v), loss.vl_of(v));
            if own.0 <= target_ml && own.1 <= target_vl {
                set.insert(own);
            }
        }
        pair_sets[v.index()] = set;
    }
    Ok(pair_sets[tree.root().index()].contains(&(target_ml, target_vl)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_provenance::parse::parse_polyset;
    use provabs_provenance::var::VarTable;
    use provabs_trees::builder::TreeBuilder;

    fn instance() -> (PolySet<f64>, Forest) {
        let mut vars = VarTable::new();
        // 2·a·x + 3·b·x + 4·c·y: grouping {a,b} merges the first two.
        let polys = parse_polyset("2·a·x + 3·b·x + 4·c·y", &mut vars).expect("parse");
        let tree = TreeBuilder::new("R")
            .child("R", "g")
            .leaves("g", ["a", "b"])
            .child("R", "c")
            .build(&mut vars)
            .expect("tree");
        (polys, Forest::single(tree))
    }

    #[test]
    fn finds_precise_abstractions() {
        let (polys, forest) = instance();
        // Identity: size 3, granularity 5.
        assert!(decide_precise(&polys, &forest, 3, 5, 1000).expect("small"));
        // {g, c}: size 2, granularity 4 (g, c, x, y).
        assert!(decide_precise(&polys, &forest, 2, 4, 1000).expect("small"));
        // {R}: a,b,c all merge → 2·R·x + 3·R·x + 4·R·y = 5·R·x + 4·R·y:
        // size 2, granularity 3.
        assert!(decide_precise(&polys, &forest, 2, 3, 1000).expect("small"));
    }

    #[test]
    fn rejects_imprecise_combinations() {
        let (polys, forest) = instance();
        assert!(!decide_precise(&polys, &forest, 1, 3, 1000).expect("small"));
        assert!(!decide_precise(&polys, &forest, 3, 4, 1000).expect("small"));
        assert!(!decide_precise(&polys, &forest, 2, 5, 1000).expect("small"));
    }

    #[test]
    fn incompatible_forest_errors() {
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·a", &mut vars).expect("parse");
        let tree = TreeBuilder::new("R")
            .leaves("R", ["a", "zz"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        assert!(decide_precise(&polys, &forest, 1, 1, 100).is_err());
    }

    #[test]
    fn cut_limit_is_respected() {
        let (polys, forest) = instance();
        let err = decide_precise(&polys, &forest, 2, 4, 1).expect_err("limit 1");
        assert!(matches!(err, TreeError::SearchSpaceTooLarge { .. }));
    }

    #[test]
    fn ptime_decision_matches_exhaustive_on_the_instance() {
        let (polys, forest) = instance();
        for b in 0..=polys.size_m() + 1 {
            for k in 0..=polys.size_v() + 1 {
                let slow = if b >= 1 && b <= polys.size_m() && k >= 1 && k <= polys.size_v() {
                    decide_precise(&polys, &forest, b, k, 1000).expect("small")
                } else {
                    false
                };
                let fast = decide_precise_single_tree(&polys, &forest, b, k).expect("one tree");
                assert_eq!(fast, slow, "B={b} K={k}");
            }
        }
    }

    #[test]
    fn ptime_decision_on_paper_example_13() {
        // The DP of Example 13 reaches ML 6 / VL 3 with {SB, Sp, e, p1}:
        // precise for B = 8, K = 6 (sizes 14−6 and 9−3).
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        // Use the cleaned tree directly (compatibility required here).
        let tree = TreeBuilder::new("Plans")
            .child("Plans", "p1")
            .child("Plans", "Special")
            .child("Plans", "Business")
            .leaves("Special", ["f1", "y1", "v"])
            .child("Business", "SB")
            .child("Business", "e")
            .leaves("SB", ["b1", "b2"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        assert!(decide_precise_single_tree(&polys, &forest, 8, 6).expect("one tree"));
        // No VVS loses 6 monomials while keeping 8 variables.
        assert!(!decide_precise_single_tree(&polys, &forest, 8, 8).expect("one tree"));
        // Out-of-range targets are simply false.
        assert!(!decide_precise_single_tree(&polys, &forest, 100, 1).expect("one tree"));
    }

    #[test]
    fn ptime_decision_rejects_forests() {
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·a + 1·b", &mut vars).expect("parse");
        let t1 = TreeBuilder::new("A")
            .leaves("A", ["a"])
            .build(&mut vars)
            .expect("t");
        let t2 = TreeBuilder::new("B")
            .leaves("B", ["b"])
            .build(&mut vars)
            .expect("t");
        let forest = Forest::new(vec![t1, t2]).expect("disjoint");
        assert!(matches!(
            decide_precise_single_tree(&polys, &forest, 2, 2),
            Err(TreeError::ExpectedSingleTree(2))
        ));
    }
}
