//! Competitor baseline: oracle-guided pairwise summarization.
//!
//! The paper compares against the approximated provenance summarization of
//! Ainy, Bourhis, Davidson, Deutch and Milo (CIKM 2015) — its `[3]` —
//! which "iteratively examines, using the oracle, the grouping of all
//! possible monomial pairs in the provenance polynomials in order to
//! reduce its size with minimal loss" (§4.3). As in the paper's own
//! comparison, the abstraction trees play the role of the black-box
//! oracle: they decide which variable pairs may be grouped (those sharing
//! a tree), provide the grouping target (their lowest common ancestor),
//! and score a candidate merge by its variable loss.
//!
//! Faithfulness notes (documented in DESIGN.md): the original algorithm
//! merges monomials; to make its output directly comparable to a VVS we
//! maintain the grouping *globally consistent* — each accepted pair merge
//! lifts the current per-tree antichain to the pair's LCAs. The defining
//! performance characteristic — a full quadratic pair scan per iteration,
//! so runtime grows as the bound shrinks — is preserved, which is exactly
//! the behaviour Figure 12 plots (and why the competitor never finished
//! on the large workloads within 24 hours).

use crate::problem::{
    evaluate_vvs, prepare, prepare_interned, AbstractionResult, InternedAbstraction,
};
use provabs_provenance::coeff::Coefficient;
use provabs_provenance::guard::{Completion, Guard};
use provabs_provenance::monomial::Monomial;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::var::VarId;
use provabs_provenance::working::WorkingSet;
use provabs_trees::cut::Vvs;
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;
use provabs_trees::tree::{AbsTree, NodeId};

/// Number of oracle interactions performed by [`pairwise_summarize`],
/// reported for instrumentation (Fig. 12's narrative is about oracle-call
/// growth).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Pairs examined (oracle calls).
    pub pairs_examined: u64,
    /// Merges applied.
    pub merges_applied: u64,
}

/// Lowest common ancestor of two nodes of one tree.
fn lca(tree: &AbsTree, a: NodeId, b: NodeId) -> NodeId {
    let mut seen = vec![false; tree.num_nodes()];
    let mut cur = Some(a);
    while let Some(n) = cur {
        seen[n.index()] = true;
        cur = tree.parent(n);
    }
    let mut cur = Some(b);
    while let Some(n) = cur {
        if seen[n.index()] {
            return n;
        }
        cur = tree.parent(n);
    }
    unreachable!("nodes of one tree always share the root")
}

/// A candidate lift produced by the oracle for one monomial pair.
struct Lift {
    /// `(tree, lca)` pairs to raise the antichain to.
    raises: Vec<(usize, NodeId)>,
    /// Variable-loss cost of applying the lift to the current antichain.
    cost: usize,
}

/// Asks the oracle whether two (already partially abstracted) monomials
/// may merge, and at what cost. `antichain[t]` is the current chosen-node
/// set of tree `t` as a membership bitmap.
fn oracle_merge(
    forest: &Forest,
    antichain: &[Vec<bool>],
    m1: &Monomial,
    m2: &Monomial,
) -> Option<Lift> {
    if m1 == m2 {
        return None;
    }
    // Variables outside the forest must agree exactly; per tree, collect
    // the (at most one, by compatibility) node of each monomial.
    type TreeSlot = (Option<(NodeId, u32)>, Option<(NodeId, u32)>);
    let mut per_tree: Vec<TreeSlot> = vec![(None, None); forest.num_trees()];
    for (side, m) in [(0, m1), (1, m2)] {
        for (v, e) in m.factors() {
            match forest.locate(v) {
                Some((ti, node)) => {
                    let slot = &mut per_tree[ti];
                    if side == 0 {
                        slot.0 = Some((node, e));
                    } else {
                        slot.1 = Some((node, e));
                    }
                }
                None => {
                    // Must occur with the same exponent on the other side.
                    let other = if side == 0 { m2 } else { m1 };
                    if other.exponent_of(v) != e {
                        return None;
                    }
                }
            }
        }
    }
    let mut raises = Vec::new();
    let mut cost = 0usize;
    for (ti, slots) in per_tree.iter().enumerate() {
        match slots {
            (None, None) => {}
            (Some((a, ea)), Some((b, eb))) => {
                if ea != eb {
                    return None;
                }
                if a != b {
                    let tree = forest.tree(ti);
                    let target = lca(tree, *a, *b);
                    // Cost: chosen antichain nodes strictly below target
                    // collapse into one.
                    let mut below = 0usize;
                    let mut stack = vec![target];
                    while let Some(n) = stack.pop() {
                        if antichain[ti][n.index()] {
                            below += 1;
                        } else {
                            stack.extend_from_slice(tree.children(n));
                        }
                    }
                    debug_assert!(below >= 2);
                    cost += below - 1;
                    raises.push((ti, target));
                }
            }
            // One side has a tree variable the other lacks: lifting can
            // never reconcile presence with absence.
            _ => return None,
        }
    }
    if raises.is_empty() {
        return None; // identical up to non-liftable parts — nothing to do
    }
    Some(Lift { raises, cost })
}

/// Runs the pairwise summarization until `|𝒫↓S|_M ≤ bound` or no pair can
/// merge. Returns the resulting abstraction and oracle statistics.
///
/// The in-flight polynomials live in a
/// [`WorkingSet`]: each accepted merge substitutes the antichain nodes
/// below the lift target incrementally (id remapping on the affected
/// monomials) instead of re-applying the whole substitution to the
/// original polynomials. The defining quadratic pair scan per iteration
/// is untouched — that *is* the baseline being measured.
pub fn pairwise_summarize<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<(AbstractionResult, OracleStats), TreeError> {
    let guard = Guard::ambient().unwrap_or_default();
    pairwise_summarize_guarded(polys, forest, bound, &guard).map(|(r, s, _)| (r, s))
}

/// [`pairwise_summarize`] under an execution [`Guard`], checked once per
/// pair-scan iteration. A trip returns the summarization reached so far —
/// every prefix of accepted merges is a sound abstraction, just a larger
/// one — tagged [`Completion::Interrupted`]; the bound-adequacy check is
/// skipped for interrupted runs.
pub fn pairwise_summarize_guarded<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
    guard: &Guard,
) -> Result<(AbstractionResult, OracleStats, Completion), TreeError> {
    let cleaned = prepare(polys, forest)?;
    let mut ws = WorkingSet::from_polyset(polys);
    let mut stats = OracleStats::default();
    let (antichain, completion) = summarize_core(&mut ws, &cleaned, bound, &mut stats, guard);
    let vvs = vvs_from_antichain(&antichain);
    debug_assert!(vvs.validate(&cleaned).is_ok());
    let result = evaluate_vvs(polys, &cleaned, vvs);
    if completion.is_complete() && !result.is_adequate_for(bound) {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: result.compressed_size_m,
        });
    }
    Ok((result, stats, completion))
}

/// [`pairwise_summarize`] in the interned currency end-to-end: the
/// quadratic pair scans and the incremental merges run on a clone of the
/// given working set, whose final state *is* `𝒫↓S` — no re-application,
/// no [`PolySet`] materialisation.
///
/// Identical VVS, sizes and oracle statistics to [`pairwise_summarize`]
/// when `source` was lowered from the equivalent poly-set
/// ([`WorkingSet::from_polyset`] — the ids then enumerate pairs in the
/// same order). For an arena interned in a different order (e.g. engine
/// emission), equal-cost merge candidates may resolve differently: the
/// baseline breaks cost ties by scan order, so the chosen VVS can be a
/// different — equally scored — summarization.
pub fn pairwise_summarize_interned<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<(InternedAbstraction<C>, OracleStats), TreeError> {
    let guard = Guard::ambient().unwrap_or_default();
    pairwise_summarize_interned_guarded(source, forest, bound, &guard).map(|(r, s, _)| (r, s))
}

/// [`pairwise_summarize_interned`] under an execution [`Guard`] — same
/// anytime semantics as [`pairwise_summarize_guarded`].
pub fn pairwise_summarize_interned_guarded<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    bound: usize,
    guard: &Guard,
) -> Result<(InternedAbstraction<C>, OracleStats, Completion), TreeError> {
    let cleaned = prepare_interned(source, forest)?;
    let original_size_m = source.size_m();
    let original_size_v = source.size_v();
    let mut ws = source.clone();
    let mut stats = OracleStats::default();
    let (antichain, completion) = summarize_core(&mut ws, &cleaned, bound, &mut stats, guard);
    let vvs = vvs_from_antichain(&antichain);
    debug_assert!(vvs.validate(&cleaned).is_ok());
    let result = AbstractionResult {
        forest: cleaned,
        vvs,
        original_size_m,
        original_size_v,
        compressed_size_m: ws.size_m(),
        compressed_size_v: ws.size_v(),
    };
    if completion.is_complete() && !result.is_adequate_for(bound) {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: result.compressed_size_m,
        });
    }
    Ok((
        InternedAbstraction {
            result,
            working: ws,
        },
        stats,
        completion,
    ))
}

/// The shared main loop: pair scans, oracle calls and incremental lifts
/// over an in-flight working set. Returns the final antichain bitmaps;
/// the working set ends as `𝒫↓S` of the returned antichain.
fn summarize_core<C: Coefficient>(
    ws: &mut WorkingSet<C>,
    cleaned: &Forest,
    bound: usize,
    stats: &mut OracleStats,
    guard: &Guard,
) -> (Vec<Vec<bool>>, Completion) {
    let mut checkpoint = guard.checkpoint();
    let mut completion = Completion::Complete;
    let mut antichain: Vec<Vec<bool>> = cleaned
        .trees()
        .iter()
        .map(|t| {
            let mut bits = vec![false; t.num_nodes()];
            for l in t.leaves() {
                bits[l.index()] = true;
            }
            bits
        })
        .collect();
    let all_polys: Vec<usize> = (0..ws.num_polys()).collect();

    while ws.size_m() > bound {
        if let Err(reason) = checkpoint.tick() {
            completion = Completion::Interrupted {
                reason,
                steps: stats.merges_applied as usize,
                size_reached: ws.size_m(),
            };
            break;
        }
        // Full pair scan (this is the point of the baseline).
        let mut best: Option<Lift> = None;
        for pi in 0..ws.num_polys() {
            let monos: Vec<&Monomial> = ws.poly_mono_ids(pi).map(|id| ws.mono(id)).collect();
            for i in 0..monos.len() {
                for j in (i + 1)..monos.len() {
                    stats.pairs_examined += 1;
                    if let Some(lift) = oracle_merge(cleaned, &antichain, monos[i], monos[j]) {
                        if best.as_ref().is_none_or(|b| lift.cost < b.cost) {
                            best = Some(lift);
                        }
                    }
                }
            }
        }
        let Some(lift) = best else {
            break; // no merge possible anywhere
        };
        stats.merges_applied += 1;
        // Apply the lift: raise the antichain, substitute the collapsed
        // group incrementally.
        for &(ti, target) in &lift.raises {
            let tree = cleaned.tree(ti);
            let mut group: Vec<VarId> = Vec::new();
            let mut stack = vec![target];
            while let Some(n) = stack.pop() {
                if antichain[ti][n.index()] {
                    group.push(tree.var_of(n));
                    antichain[ti][n.index()] = false;
                } else {
                    stack.extend_from_slice(tree.children(n));
                }
            }
            antichain[ti][target.index()] = true;
            ws.apply_group(&group, tree.var_of(target), &all_polys);
        }
    }
    (antichain, completion)
}

fn vvs_from_antichain(antichain: &[Vec<bool>]) -> Vvs {
    Vvs::from_per_tree(
        antichain
            .iter()
            .map(|bits| {
                bits.iter()
                    .enumerate()
                    .filter_map(|(i, &b)| b.then_some(NodeId(i as u32)))
                    .collect()
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::optimal_vvs;
    use provabs_provenance::parse::parse_polyset;
    use provabs_provenance::var::VarTable;
    use provabs_trees::generate::{months_tree, plans_tree};

    fn example_13() -> (PolySet<f64>, Forest) {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        let forest = Forest::single(plans_tree(&mut vars));
        (polys, forest)
    }

    #[test]
    fn reaches_the_bound_with_valid_vvs() {
        let (polys, forest) = example_13();
        let (r, stats) = pairwise_summarize(&polys, &forest, 9).expect("adequate");
        assert!(r.is_adequate_for(9));
        assert!(stats.pairs_examined > 0);
        assert!(stats.merges_applied >= 1);
        r.vvs.validate(&r.forest).expect("valid");
    }

    #[test]
    fn interned_entry_point_matches_polyset_entry_point() {
        let (polys, forest) = example_13();
        let source = WorkingSet::from_polyset(&polys);
        for bound in [4, 9, 12] {
            let by_polys = pairwise_summarize(&polys, &forest, bound);
            let by_ws = pairwise_summarize_interned(&source, &forest, bound);
            match (by_polys, by_ws) {
                (Ok((a, sa)), Ok((b, sb))) => {
                    assert_eq!(a.vvs, b.result.vvs, "bound {bound}");
                    assert_eq!(a.compressed_size_m, b.result.compressed_size_m);
                    assert_eq!(a.compressed_size_v, b.result.compressed_size_v);
                    assert_eq!(sa, sb, "oracle statistics differ at bound {bound}");
                    assert_eq!(b.working.size_m(), b.result.compressed_size_m);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "bound {bound}"),
                (a, b) => panic!("entry points disagree at bound {bound}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn quality_close_to_but_not_above_optimal() {
        let (polys, forest) = example_13();
        let (r, _) = pairwise_summarize(&polys, &forest, 9).expect("adequate");
        let opt = optimal_vvs(&polys, &forest, 9).expect("adequate");
        assert!(r.vl() >= opt.vl(), "competitor cannot beat the optimum");
    }

    #[test]
    fn oracle_refuses_unliftable_pairs() {
        // x·a and y·b share no structure outside the tree: a ≠ b blocks.
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·x·a + 1·y·b", &mut vars).expect("parse");
        let tree = provabs_trees::builder::TreeBuilder::new("g")
            .leaves("g", ["x", "y"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        let err = pairwise_summarize(&polys, &forest, 1).expect_err("cannot merge");
        assert!(matches!(err, TreeError::BoundUnattainable { .. }));
    }

    #[test]
    fn exponent_mismatch_blocks_merge() {
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·x^2 + 1·y", &mut vars).expect("parse");
        let tree = provabs_trees::builder::TreeBuilder::new("g")
            .leaves("g", ["x", "y"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        let err = pairwise_summarize(&polys, &forest, 1).expect_err("x² vs y¹");
        assert!(matches!(err, TreeError::BoundUnattainable { .. }));
    }

    #[test]
    fn multi_tree_merges_combine_lifts() {
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·x·a + 1·y·b", &mut vars).expect("parse");
        let t1 = provabs_trees::builder::TreeBuilder::new("g")
            .leaves("g", ["x", "y"])
            .build(&mut vars)
            .expect("tree");
        let t2 = provabs_trees::builder::TreeBuilder::new("h")
            .leaves("h", ["a", "b"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::new(vec![t1, t2]).expect("disjoint");
        let (r, _) = pairwise_summarize(&polys, &forest, 1).expect("merge via both trees");
        assert_eq!(r.compressed_size_m, 1);
        assert_eq!(r.vl(), 2); // two variables lost in each tree − 1 each
    }

    #[test]
    fn example_15_bound_matches_paper_behaviour() {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        let forest =
            Forest::new(vec![plans_tree(&mut vars), months_tree(&mut vars)]).expect("disjoint");
        let (r, _) = pairwise_summarize(&polys, &forest, 4).expect("adequate");
        assert!(r.is_adequate_for(4));
        // Brute-force optimum at this bound is VL 4 (Example 15).
        assert!(r.vl() >= 4);
    }
}
