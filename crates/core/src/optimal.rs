//! Algorithm 1: optimal valid-variable selection for a single tree.
//!
//! For every node `v` and every monomial loss `i ∈ 0..k` (where
//! `k = |𝒫|_M − B`), the dynamic program records the minimal variable loss
//! of a VVS drawn from the subtree of `v` achieving monomial loss exactly
//! `i`; index `k` is the "≥ k" bucket. A node's array is either the
//! knapsack combination of its children's arrays (losses add, because
//! compatibility makes sibling subtrees compress disjoint monomial
//! groups — the paper's key insight) or the singleton choice `S = {v}`.
//! The answer is the VVS encoded at the root's `k` entry, reconstructed by
//! walking the recorded choices (Prop. 12/14: PTIME, `O(n·w·k²·|𝒫|_M)`).
//! The final measurement of the reconstructed VVS goes through the shared
//! interned working set (via [`evaluate_vvs`]) instead of a wholesale
//! substitution pass.
//!
//! Two implementations are provided:
//!
//! * [`optimal_vvs`] — the sparse variant of §4.1: arrays are hash maps
//!   holding only non-⊥ entries, with the height-1 shortcut,
//! * [`optimal_vvs_dense`] — a dense reference implementation, used to
//!   cross-check the sparse one in tests and as an ablation baseline.

use crate::loss::TreeLoss;
use crate::problem::{
    evaluate_vvs, evaluate_vvs_interned, prepare, prepare_interned, AbstractionResult,
    InternedAbstraction,
};
use provabs_provenance::coeff::Coefficient;
use provabs_provenance::fxhash::FxHashMap;
use provabs_provenance::guard::{Completion, Guard, Interrupt};
use provabs_provenance::polyset::PolySet;
use provabs_provenance::working::WorkingSet;
use provabs_trees::cut::Vvs;
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;
use provabs_trees::tree::{AbsTree, NodeId};

/// How a DP entry was obtained, for reconstruction.
#[derive(Clone, Debug)]
enum Choice {
    /// `S = {v}`: the node itself is chosen, abstracting its whole
    /// subtree.
    Take,
    /// Union of children VVSs; `alloc[i]` is the loss allocated to the
    /// `i`-th child.
    Split(Vec<usize>),
}

/// A DP cell: minimal variable loss and the choice realising it.
#[derive(Clone, Debug)]
struct Entry {
    vl: u64,
    choice: Choice,
}

/// Sparse per-node array: monomial loss → entry (only non-⊥ kept).
type SparseArray = FxHashMap<usize, Entry>;

fn better(slot: &mut Option<Entry>, vl: u64, choice: impl FnOnce() -> Choice) {
    if slot.as_ref().is_none_or(|e| vl < e.vl) {
        *slot = Some(Entry {
            vl,
            choice: choice(),
        });
    }
}

/// Runs the sparse DP over one (cleaned) tree; returns per-node arrays.
///
/// The guard is checked once per postorder node and once per child
/// folded into a knapsack. Unlike the greedy engines the DP has no
/// usable intermediate state, so a trip aborts the solve: the caller
/// falls back to the identity abstraction (always sound) tagged
/// [`Completion::Interrupted`], with `steps` = checks passed.
fn solve_sparse(
    tree: &AbsTree,
    loss: &TreeLoss,
    k: usize,
    guard: &Guard,
) -> Result<Vec<SparseArray>, (Interrupt, usize)> {
    let mut checkpoint = guard.checkpoint();
    let tick = |cp: &mut provabs_provenance::guard::Checkpoint<'_>| match cp.tick() {
        Ok(()) => Ok(()),
        Err(reason) => Err((reason, cp.ticks() as usize)),
    };
    let mut arrays: Vec<SparseArray> = vec![SparseArray::default(); tree.num_nodes()];
    for v in tree.postorder() {
        tick(&mut checkpoint)?;
        let mut arr = SparseArray::default();
        if tree.is_leaf(v) {
            arr.insert(
                0,
                Entry {
                    vl: 0,
                    choice: Choice::Take,
                },
            );
        } else {
            let children = tree.children(v);
            let height_one = children.iter().all(|&c| tree.is_leaf(c));
            if height_one {
                // §4.1 shortcut: all-leaf children contribute only the
                // zero-loss entry, so skip computeArray entirely.
                arr.insert(
                    0,
                    Entry {
                        vl: 0,
                        choice: Choice::Split(vec![0; children.len()]),
                    },
                );
            } else {
                // computeArray: fold children with a sparse knapsack.
                let mut cur: FxHashMap<usize, (u64, Vec<usize>)> = FxHashMap::default();
                for (s, e) in &arrays[children[0].index()] {
                    cur.insert(*s, (e.vl, vec![*s]));
                }
                for &c in &children[1..] {
                    tick(&mut checkpoint)?;
                    let carr = &arrays[c.index()];
                    let mut next: FxHashMap<usize, (u64, Vec<usize>)> = FxHashMap::default();
                    for (s, (vs, alloc)) in &cur {
                        for (t, et) in carr {
                            let j = (s + t).min(k);
                            let cand = vs + et.vl;
                            let slot = next.entry(j);
                            use std::collections::hash_map::Entry as E;
                            match slot {
                                E::Occupied(mut o) => {
                                    if cand < o.get().0 {
                                        let mut a = alloc.clone();
                                        a.push(*t);
                                        o.insert((cand, a));
                                    }
                                }
                                E::Vacant(vac) => {
                                    let mut a = alloc.clone();
                                    a.push(*t);
                                    vac.insert((cand, a));
                                }
                            }
                        }
                    }
                    cur = next;
                }
                for (j, (vl, alloc)) in cur {
                    arr.insert(
                        j,
                        Entry {
                            vl,
                            choice: Choice::Split(alloc),
                        },
                    );
                }
            }
            // The S = {v} option (lines 8–11 of Algorithm 1).
            let j = loss.ml_of(v).min(k);
            let vl_v = loss.vl_of(v) as u64;
            let mut slot = arr.remove(&j);
            better(&mut slot, vl_v, || Choice::Take);
            arr.insert(j, slot.expect("just set"));
        }
        arrays[v.index()] = arr;
    }
    Ok(arrays)
}

/// Walks the recorded choices, collecting the chosen nodes.
fn reconstruct(tree: &AbsTree, arrays: &[SparseArray], v: NodeId, j: usize, out: &mut Vec<NodeId>) {
    let entry = arrays[v.index()]
        .get(&j)
        .expect("reconstruction follows recorded entries");
    match &entry.choice {
        Choice::Take => out.push(v),
        Choice::Split(alloc) => {
            for (&c, &jc) in tree.children(v).iter().zip(alloc) {
                reconstruct(tree, arrays, c, jc, out);
            }
        }
    }
}

/// Shared preamble / trivial-case handling. Returns `Ok(Err(result))` for
/// trivially-solved instances, `Ok(Ok((cleaned, k)))` otherwise.
#[allow(clippy::type_complexity)]
fn preamble<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<Result<(Forest, usize), AbstractionResult>, TreeError> {
    let cleaned = prepare(polys, forest)?;
    let total_m = polys.size_m();
    if bound >= total_m {
        // Nothing to do: the identity abstraction is optimal (VL = 0).
        let vvs = Vvs::identity(&cleaned);
        return Ok(Err(evaluate_vvs(polys, &cleaned, vvs)));
    }
    if cleaned.num_trees() == 0 {
        // No abstraction possible at all (trees were all trivial).
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: total_m,
        });
    }
    if cleaned.num_trees() != 1 {
        return Err(TreeError::ExpectedSingleTree(cleaned.num_trees()));
    }
    Ok(Ok((cleaned, total_m - bound)))
}

/// Algorithm 1 with the sparse arrays of §4.1 (the default).
///
/// Returns the optimal abstraction for `bound`: adequate
/// (`|𝒫↓S|_M ≤ bound`) with minimal variable loss, or
/// [`TreeError::BoundUnattainable`] when no VVS reaches the bound
/// (Example 8), or [`TreeError::ExpectedSingleTree`] for multi-tree
/// forests (use [`crate::greedy::greedy_vvs`] there).
///
/// ```
/// use provabs_provenance::{parse::parse_polyset, VarTable};
/// use provabs_trees::{builder::TreeBuilder, forest::Forest};
/// use provabs_core::optimal::optimal_vvs;
///
/// let mut vars = VarTable::new();
/// // Example 2's quarterly grouping: m1, m3 merge into q1.
/// let polys = parse_polyset("220.8·p1·m1 + 240·p1·m3", &mut vars).unwrap();
/// let tree = TreeBuilder::new("q1").leaves("q1", ["m1", "m3"]).build(&mut vars).unwrap();
/// let result = optimal_vvs(&polys, &Forest::single(tree), 1).unwrap();
/// assert_eq!(result.compressed_size_m, 1); // 460.8·p1·q1
/// assert_eq!(result.vl(), 1);
/// ```
pub fn optimal_vvs<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<AbstractionResult, TreeError> {
    let guard = Guard::ambient().unwrap_or_default();
    optimal_vvs_guarded(polys, forest, bound, &guard).map(|(result, _)| result)
}

/// [`optimal_vvs`] under an execution [`Guard`].
///
/// The DP, unlike the greedy engines, has no usable partial state: a
/// guard trip mid-solve falls back to the *identity abstraction* (the
/// only abstraction that is sound without finishing the search), tagged
/// [`Completion::Interrupted`] with `size_reached = |𝒫|_M`. The
/// bound-adequacy error only applies to complete runs.
pub fn optimal_vvs_guarded<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
    guard: &Guard,
) -> Result<(AbstractionResult, Completion), TreeError> {
    let (cleaned, k) = match preamble(polys, forest, bound)? {
        Err(done) => return Ok((done, Completion::Complete)),
        Ok(v) => v,
    };
    let tree = cleaned.tree(0);
    let loss = TreeLoss::build(polys, tree);
    let arrays = match solve_sparse(tree, &loss, k, guard) {
        Ok(arrays) => arrays,
        Err((reason, steps)) => {
            let vvs = Vvs::identity(&cleaned);
            let result = evaluate_vvs(polys, &cleaned, vvs);
            let completion = Completion::Interrupted {
                reason,
                steps,
                size_reached: result.compressed_size_m,
            };
            return Ok((result, completion));
        }
    };
    let root = tree.root();
    if !arrays[root.index()].contains_key(&k) {
        let best_ml = arrays[root.index()].keys().copied().max().unwrap_or(0);
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: polys.size_m() - best_ml,
        });
    }
    let mut chosen = Vec::new();
    reconstruct(tree, &arrays, root, k, &mut chosen);
    let vvs = Vvs::from_per_tree(vec![chosen]);
    debug_assert!(vvs.validate(&cleaned).is_ok());
    Ok((evaluate_vvs(polys, &cleaned, vvs), Completion::Complete))
}

/// [`optimal_vvs`] in the interned currency end-to-end: the per-node loss
/// index is built from the working set's memoised arena remainders
/// ([`TreeLoss::build_interned`]), the DP runs unchanged, and the chosen
/// VVS is applied in id space — the returned [`InternedAbstraction`]
/// carries `𝒫↓S` ready to freeze. Identical VVS and measures to
/// [`optimal_vvs`] on the materialised poly-set.
pub fn optimal_vvs_interned<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<InternedAbstraction<C>, TreeError> {
    let guard = Guard::ambient().unwrap_or_default();
    optimal_vvs_interned_guarded(source, forest, bound, &guard).map(|(abs, _)| abs)
}

/// [`optimal_vvs_interned`] under an execution [`Guard`] — the same
/// identity-fallback contract as [`optimal_vvs_guarded`].
pub fn optimal_vvs_interned_guarded<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    bound: usize,
    guard: &Guard,
) -> Result<(InternedAbstraction<C>, Completion), TreeError> {
    let cleaned = prepare_interned(source, forest)?;
    let total_m = source.size_m();
    if bound >= total_m {
        let vvs = Vvs::identity(&cleaned);
        return Ok((
            evaluate_vvs_interned(source.clone(), &cleaned, vvs),
            Completion::Complete,
        ));
    }
    if cleaned.num_trees() == 0 {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: total_m,
        });
    }
    if cleaned.num_trees() != 1 {
        return Err(TreeError::ExpectedSingleTree(cleaned.num_trees()));
    }
    let k = total_m - bound;
    let mut work = source.clone();
    let tree = cleaned.tree(0);
    let loss = TreeLoss::build_interned(&mut work, tree);
    let arrays = match solve_sparse(tree, &loss, k, guard) {
        Ok(arrays) => arrays,
        Err((reason, steps)) => {
            // `work` was only used to memoise losses; the identity
            // fallback starts from the untouched source.
            let vvs = Vvs::identity(&cleaned);
            let abs = evaluate_vvs_interned(source.clone(), &cleaned, vvs);
            let completion = Completion::Interrupted {
                reason,
                steps,
                size_reached: abs.result.compressed_size_m,
            };
            return Ok((abs, completion));
        }
    };
    let root = tree.root();
    if !arrays[root.index()].contains_key(&k) {
        let best_ml = arrays[root.index()].keys().copied().max().unwrap_or(0);
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: total_m - best_ml,
        });
    }
    let mut chosen = Vec::new();
    reconstruct(tree, &arrays, root, k, &mut chosen);
    let vvs = Vvs::from_per_tree(vec![chosen]);
    debug_assert!(vvs.validate(&cleaned).is_ok());
    Ok((
        evaluate_vvs_interned(work, &cleaned, vvs),
        Completion::Complete,
    ))
}

/// Algorithm 1 with dense `k+1`-length arrays — the straightforward
/// transcription of the pseudo-code, kept as a reference implementation
/// (tests assert it agrees with [`optimal_vvs`]) and an ablation baseline.
pub fn optimal_vvs_dense<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<AbstractionResult, TreeError> {
    let (cleaned, k) = match preamble(polys, forest, bound)? {
        Err(done) => return Ok(done),
        Ok(v) => v,
    };
    let tree = cleaned.tree(0);
    let loss = TreeLoss::build(polys, tree);

    // Dense arrays: index j holds Option<Entry>.
    let mut arrays: Vec<Vec<Option<Entry>>> = vec![Vec::new(); tree.num_nodes()];
    for v in tree.postorder() {
        let mut arr: Vec<Option<Entry>> = vec![None; k + 1];
        if tree.is_leaf(v) {
            arr[0] = Some(Entry {
                vl: 0,
                choice: Choice::Take,
            });
        } else {
            let children = tree.children(v);
            // computeArray, dense: τ[i][j] over prefix of children.
            let mut cur: Vec<Option<(u64, Vec<usize>)>> = vec![None; k + 1];
            for (j, e) in arrays[children[0].index()].iter().enumerate() {
                if let Some(e) = e {
                    cur[j] = Some((e.vl, vec![j]));
                }
            }
            for &c in &children[1..] {
                let carr = &arrays[c.index()];
                let mut next: Vec<Option<(u64, Vec<usize>)>> = vec![None; k + 1];
                for (s, cell) in cur.iter().enumerate() {
                    let Some((vs, alloc)) = cell else { continue };
                    for (t, ct) in carr.iter().enumerate() {
                        let Some(et) = ct else { continue };
                        let j = (s + t).min(k);
                        let cand = vs + et.vl;
                        if next[j].as_ref().is_none_or(|(v, _)| cand < *v) {
                            let mut a = alloc.clone();
                            a.push(t);
                            next[j] = Some((cand, a));
                        }
                    }
                }
                cur = next;
            }
            for (j, cell) in cur.into_iter().enumerate() {
                if let Some((vl, alloc)) = cell {
                    arr[j] = Some(Entry {
                        vl,
                        choice: Choice::Split(alloc),
                    });
                }
            }
            let j = loss.ml_of(v).min(k);
            better(&mut arr[j], loss.vl_of(v) as u64, || Choice::Take);
        }
        arrays[v.index()] = arr;
    }

    let root = tree.root();
    if arrays[root.index()][k].is_none() {
        let best_ml = arrays[root.index()]
            .iter()
            .enumerate()
            .rev()
            .find_map(|(j, e)| e.as_ref().map(|_| j))
            .unwrap_or(0);
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: polys.size_m() - best_ml,
        });
    }
    // Reconstruct through the dense arrays.
    fn rec_dense(
        tree: &AbsTree,
        arrays: &[Vec<Option<Entry>>],
        v: NodeId,
        j: usize,
        out: &mut Vec<NodeId>,
    ) {
        let entry = arrays[v.index()][j].as_ref().expect("recorded entry");
        match &entry.choice {
            Choice::Take => out.push(v),
            Choice::Split(alloc) => {
                for (&c, &jc) in tree.children(v).iter().zip(alloc) {
                    rec_dense(tree, arrays, c, jc, out);
                }
            }
        }
    }
    let mut chosen = Vec::new();
    rec_dense(tree, &arrays, root, k, &mut chosen);
    let vvs = Vvs::from_per_tree(vec![chosen]);
    Ok(evaluate_vvs(polys, &cleaned, vvs))
}

/// The full size/granularity trade-off frontier of a single tree: for
/// every attainable compressed size, the maximal attainable granularity.
///
/// One DP run (with `k` set to the maximal attainable loss) answers every
/// bound at once — handy for bound sweeps (Figures 9/10) and an extension
/// beyond the paper's single-bound API.
///
/// Returns `(compressed_size_m, compressed_size_v)` pairs sorted by
/// decreasing size, already filtered to the Pareto frontier.
pub fn optimal_frontier<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
) -> Result<Vec<(usize, usize)>, TreeError> {
    let cleaned = prepare(polys, forest)?;
    let total_m = polys.size_m();
    let total_v = polys.size_v();
    if cleaned.num_trees() == 0 {
        return Ok(vec![(total_m, total_v)]);
    }
    if cleaned.num_trees() != 1 {
        return Err(TreeError::ExpectedSingleTree(cleaned.num_trees()));
    }
    let tree = cleaned.tree(0);
    let loss = TreeLoss::build(polys, tree);
    let k_max = loss.ml_of(tree.root()); // coarsening is monotone in ML

    // Under an ambient guard a tripped frontier solve degrades to the
    // identity-only frontier — the anytime floor of this API.
    let guard = Guard::ambient().unwrap_or_default();
    let arrays = match solve_sparse(tree, &loss, k_max, &guard) {
        Ok(arrays) => arrays,
        Err(_) => return Ok(vec![(total_m, total_v)]),
    };
    let mut points: Vec<(usize, u64)> = arrays[tree.root().index()]
        .iter()
        .map(|(&j, e)| (j, e.vl))
        .collect();
    points.sort_unstable();
    // Suffix-min of VL over ML ≥ j, then convert to sizes.
    let mut out = Vec::with_capacity(points.len() + 1);
    out.push((total_m, total_v)); // identity point (ML = 0 always present)
    let mut best_vl = u64::MAX;
    let mut frontier: Vec<(usize, usize)> = Vec::with_capacity(points.len());
    for &(j, vl) in points.iter().rev() {
        if vl < best_vl {
            best_vl = vl;
            frontier.push((total_m - j, total_v - best_vl as usize));
        }
    }
    frontier.reverse();
    for p in frontier {
        if p.0 < total_m {
            out.push(p);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_provenance::parse::parse_polyset;
    use provabs_provenance::var::VarTable;
    use provabs_trees::builder::TreeBuilder;
    use provabs_trees::generate::{months_tree, plans_tree};

    /// P1, P2 of Example 13 plus the Figure 2 plans tree (raw; algorithms
    /// clean it internally).
    fn example_13() -> (PolySet<f64>, Forest, VarTable) {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        let forest = Forest::single(plans_tree(&mut vars));
        (polys, forest, vars)
    }

    #[test]
    fn example_13_optimal_selection() {
        // B = 9, k = 5: the optimal VVS is {SB, Special, e, p1} with
        // ML = 6 and VL = 3 (the paper's Sp is shorthand for Special).
        let (polys, forest, vars) = example_13();
        let r = optimal_vvs(&polys, &forest, 9).expect("solvable");
        assert!(r.is_adequate_for(9));
        assert_eq!(r.vl(), 3);
        assert_eq!(r.ml(), 6);
        assert_eq!(r.compressed_size_m, 8);
        assert_eq!(
            r.vvs.labels(&r.forest),
            vec!["SB", "Special", "e", "p1"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
        let _ = vars;
    }

    #[test]
    fn dense_and_sparse_agree_on_example_13() {
        let (polys, forest, _) = example_13();
        for bound in 4..=14 {
            let sparse = optimal_vvs(&polys, &forest, bound);
            let dense = optimal_vvs_dense(&polys, &forest, bound);
            match (sparse, dense) {
                (Ok(s), Ok(d)) => {
                    assert_eq!(s.vl(), d.vl(), "bound {bound}");
                    assert!(s.is_adequate_for(bound));
                    assert!(d.is_adequate_for(bound));
                }
                (Err(es), Err(ed)) => assert_eq!(es, ed, "bound {bound}"),
                (s, d) => panic!("disagreement at bound {bound}: {s:?} vs {d:?}"),
            }
        }
    }

    #[test]
    fn interned_entry_point_matches_polyset_entry_point() {
        let (polys, forest, _) = example_13();
        let source = WorkingSet::from_polyset(&polys);
        for bound in 3..=polys.size_m() + 1 {
            let by_polys = optimal_vvs(&polys, &forest, bound);
            let by_ws = optimal_vvs_interned(&source, &forest, bound);
            match (by_polys, by_ws) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.vvs, b.result.vvs, "bound {bound}");
                    assert_eq!(a.compressed_size_m, b.result.compressed_size_m);
                    assert_eq!(a.compressed_size_v, b.result.compressed_size_v);
                    assert_eq!(b.working.size_m(), b.result.compressed_size_m);
                    assert_eq!(b.working.size_v(), b.result.compressed_size_v);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "bound {bound}"),
                (a, b) => panic!("entry points disagree at bound {bound}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn example_8_bound_unattainable() {
        // P of Example 2 with the months tree: maximal compression is
        // size 4, so B = 3 has no adequate VVS.
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3",
            &mut vars,
        )
        .expect("parse");
        let forest = Forest::single(months_tree(&mut vars));
        let err = optimal_vvs(&polys, &forest, 3).expect_err("unattainable");
        assert_eq!(
            err,
            TreeError::BoundUnattainable {
                bound: 3,
                best_possible: 4
            }
        );
        // B = 4 is attainable: group m1, m3 under q1.
        let r = optimal_vvs(&polys, &forest, 4).expect("attainable");
        assert_eq!(r.compressed_size_m, 4);
        assert_eq!(r.vl(), 1);
    }

    #[test]
    fn loose_bound_returns_identity() {
        let (polys, forest, _) = example_13();
        let r = optimal_vvs(&polys, &forest, polys.size_m()).expect("identity");
        assert_eq!(r.vl(), 0);
        assert_eq!(r.ml(), 0);
        assert_eq!(r.compressed_size_m, polys.size_m());
    }

    #[test]
    fn tightest_bound_takes_the_root() {
        let (polys, forest, _) = example_13();
        // Maximal compression: both polynomials collapse to 2 monomials
        // each (one per month) → size 4, via S = {Plans}.
        let r = optimal_vvs(&polys, &forest, 4).expect("solvable");
        assert_eq!(r.compressed_size_m, 4);
        assert_eq!(r.vvs.labels(&r.forest), vec!["Plans".to_string()]);
        let err = optimal_vvs(&polys, &forest, 3).expect_err("below maximal compression");
        assert!(matches!(err, TreeError::BoundUnattainable { .. }));
    }

    #[test]
    fn multi_tree_forest_is_rejected() {
        let (polys, _, mut vars) = example_13();
        let f2 = Forest::new(vec![plans_tree_clone(&mut vars), months_tree(&mut vars)])
            .expect("disjoint");
        let err = optimal_vvs(&polys, &f2, 9).expect_err("two trees");
        assert_eq!(err, TreeError::ExpectedSingleTree(2));
    }

    /// Rebuild the plans tree under fresh labels is impossible (labels are
    /// global), so reuse the generator — the vars are already interned.
    fn plans_tree_clone(vars: &mut VarTable) -> provabs_trees::tree::AbsTree {
        plans_tree(vars)
    }

    #[test]
    fn frontier_covers_all_bounds() {
        let (polys, forest, _) = example_13();
        let frontier = optimal_frontier(&polys, &forest).expect("frontier");
        // Identity point plus strictly improving compressed sizes.
        assert_eq!(frontier[0], (14, 9));
        assert!(frontier.windows(2).all(|w| w[1].0 < w[0].0));
        // The frontier agrees with per-bound optimal runs.
        for &(size, granularity) in &frontier {
            let r = optimal_vvs(&polys, &forest, size).expect("attainable");
            assert_eq!(r.compressed_size_v, granularity, "size {size}");
        }
        // Best possible size is 4 (Example 13's tree merges plans only).
        assert_eq!(frontier.last().expect("non-empty").0, 4);
    }

    #[test]
    fn single_leaf_monomials_merge_into_constants() {
        // Abstracting x,y in "2·x + 3·y" gives 5·g — a single monomial.
        let mut vars = VarTable::new();
        let polys = parse_polyset("2·x + 3·y", &mut vars).expect("parse");
        let tree = TreeBuilder::new("g")
            .leaves("g", ["x", "y"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        let r = optimal_vvs(&polys, &forest, 1).expect("solvable");
        assert_eq!(r.compressed_size_m, 1);
        assert_eq!(r.compressed_size_v, 1);
        let down = r.apply(&polys);
        let g = vars.lookup("g").expect("interned");
        assert_eq!(
            down.iter()
                .next()
                .expect("one poly")
                .coefficient(&provabs_provenance::monomial::Monomial::var(g)),
            5.0
        );
    }
}
