//! Algorithm 2: greedy valid-variable selection for multiple trees.
//!
//! Optimal selection over an arbitrary forest is NP-hard (Prop. 11), so
//! the greedy heuristic maintains a VVS `S` (initially all leaves) and a
//! candidate set `C` of nodes whose children are all in `S`. While the
//! accumulated monomial loss is below `k = |𝒫|_M − B` and candidates
//! remain, it replaces the children of the candidate with the *minimal
//! variable loss* by the candidate itself. Ties on variable loss are
//! broken towards the larger monomial loss measured on the *current*
//! (partially abstracted) polynomials — this reproduces Example 15, where
//! `q1` is preferred over `SB` (both lose one variable, but `q1` saves 7
//! monomials and `SB` only 2); remaining ties fall back to label order
//! for determinism ("ties are broken arbitrarily").
//!
//! # Engines
//!
//! Two engines implement the identical selection rule:
//!
//! * the **incremental engine** (default, behind [`greedy_vvs`] and
//!   [`greedy_frontier`]) keeps the in-flight polynomials in an interned
//!   [`WorkingSet`] and *delta-maintains* the candidate scores: each
//!   candidate caches its `(vl, ml_delta, affected)` triple, candidates
//!   are bucketed by variable loss, and applying a merge only dirties the
//!   candidates whose affected-polynomial sets intersect the applied
//!   group's postings (tracked by per-polynomial version stamps, checked
//!   lazily when a candidate's bucket is scanned). A step rewrites only
//!   the affected id-maps, so the per-iteration cost tracks the merge's
//!   footprint instead of `O(|𝒫|_M)`;
//! * the **reference engine** ([`greedy_vvs_reference`],
//!   [`greedy_frontier_reference`]) is the paper's direct transcription —
//!   every iteration re-derives each minimal-VL candidate's group and
//!   recomputes its monomial loss from scratch on cloned polynomials
//!   (`O(n · |𝒫|_M)`, §3.2). It is kept as the test oracle and the
//!   ablation baseline of `bench_compress`.
//!
//! The two are step-for-step identical: same chosen VVS, same frontier
//! trace, same tie-breaks (asserted by the
//! `incremental_equivalence` property suite).

use crate::loss::ml_delta_of_group_in;
use crate::problem::{
    evaluate_vvs, evaluate_vvs_interned, prepare, prepare_interned, AbstractionResult,
    InternedAbstraction,
};
use provabs_provenance::coeff::Coefficient;
use provabs_provenance::fxhash::{FxHashMap, FxHashSet};
use provabs_provenance::guard::{Completion, Guard};
use provabs_provenance::polyset::PolySet;
use provabs_provenance::var::VarId;
use provabs_provenance::working::WorkingSet;
use provabs_trees::cut::Vvs;
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;
use provabs_trees::tree::NodeId;

/// Inverted index `variable → polynomial postings`, each list sorted
/// ascending and duplicate-free.
type Postings = FxHashMap<VarId, Vec<usize>>;

/// Builds the postings index over a polynomial slice. Lists come out
/// sorted because polynomials are visited in index order.
fn build_postings<C: Coefficient>(
    polys: &[provabs_provenance::polynomial::Polynomial<C>],
) -> Postings {
    let mut postings = Postings::default();
    for (pi, p) in polys.iter().enumerate() {
        for (m, _) in p.iter() {
            for v in m.vars() {
                let list = postings.entry(v).or_default();
                if list.last() != Some(&pi) {
                    list.push(pi);
                }
            }
        }
    }
    postings
}

/// [`build_postings`] over an interned working set — the variables come
/// straight out of the arena, no polynomial materialisation. Produces the
/// same index (sorted, duplicate-free) as the slice-based builder.
fn build_postings_ws<C: Coefficient>(ws: &WorkingSet<C>) -> Postings {
    let mut postings = Postings::default();
    for pi in 0..ws.num_polys() {
        for id in ws.poly_mono_ids(pi) {
            for v in ws.mono(id).vars() {
                let list = postings.entry(v).or_default();
                if list.last() != Some(&pi) {
                    list.push(pi);
                }
            }
        }
    }
    postings
}

/// Merges two sorted duplicate-free lists into one.
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sorted list of polynomial indices containing any variable of `group`:
/// a k-way merge of the (already sorted) postings lists, smallest lists
/// first so the accumulator stays as short as possible.
fn affected_polys(postings: &Postings, group: &[VarId]) -> Vec<usize> {
    let mut lists: Vec<&[usize]> = group
        .iter()
        .filter_map(|v| postings.get(v))
        .map(Vec::as_slice)
        .collect();
    lists.sort_unstable_by_key(|l| l.len());
    let mut out: Vec<usize> = Vec::new();
    for l in lists {
        if out.is_empty() {
            out.extend_from_slice(l);
        } else {
            out = merge_sorted(&out, l);
        }
    }
    out
}

/// Runs Algorithm 2 with the incremental engine. Works for any number of
/// trees (including one, where it is a fast but possibly sub-optimal
/// alternative to [`crate::optimal::optimal_vvs`]).
///
/// Returns [`TreeError::BoundUnattainable`] when even exhausting every
/// candidate cannot reach `bound`; the error carries the best size the
/// greedy run achieved.
///
/// ```
/// use provabs_provenance::{parse::parse_polyset, VarTable};
/// use provabs_trees::{builder::TreeBuilder, forest::Forest};
/// use provabs_core::greedy::greedy_vvs;
///
/// let mut vars = VarTable::new();
/// let polys = parse_polyset("1·a·x + 2·b·x + 3·a·y + 4·b·y", &mut vars).unwrap();
/// let t1 = TreeBuilder::new("AB").leaves("AB", ["a", "b"]).build(&mut vars).unwrap();
/// let t2 = TreeBuilder::new("XY").leaves("XY", ["x", "y"]).build(&mut vars).unwrap();
/// let forest = Forest::new(vec![t1, t2]).unwrap();
/// // Two trees: the optimal DP does not apply, the greedy does.
/// let result = greedy_vvs(&polys, &forest, 2).unwrap();
/// assert!(result.compressed_size_m <= 2);
/// ```
pub fn greedy_vvs<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<AbstractionResult, TreeError> {
    let guard = Guard::ambient().unwrap_or_default();
    greedy_vvs_guarded(polys, forest, bound, &guard).map(|(result, _)| result)
}

/// [`greedy_vvs`] under an execution [`Guard`].
///
/// The selection loop checks the guard once per step. On a trip the run
/// does not error: greedy compression is *anytime* — the prefix of
/// merges applied so far is itself a sound abstraction, just a larger
/// one — so the best-so-far result comes back tagged
/// [`Completion::Interrupted`]. The bound-adequacy check (and its
/// [`TreeError::BoundUnattainable`]) only applies to complete runs.
pub fn greedy_vvs_guarded<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
    guard: &Guard,
) -> Result<(AbstractionResult, Completion), TreeError> {
    greedy_vvs_with(polys, forest, bound, guard, run_incremental)
}

/// [`greedy_vvs`] driven by the reference engine (full per-iteration
/// rescan on cloned polynomials) — the oracle for equivalence tests and
/// the baseline of the `bench_compress` ablation.
pub fn greedy_vvs_reference<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<AbstractionResult, TreeError> {
    let guard = Guard::ambient().unwrap_or_default();
    greedy_vvs_reference_guarded(polys, forest, bound, &guard).map(|(result, _)| result)
}

/// [`greedy_vvs_guarded`] driven by the reference engine — the same
/// anytime contract, checked step-for-step against the incremental
/// engine by the guarded-compression suite.
pub fn greedy_vvs_reference_guarded<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
    guard: &Guard,
) -> Result<(AbstractionResult, Completion), TreeError> {
    greedy_vvs_with(polys, forest, bound, guard, run_reference)
}

/// The greedy trade-off trace: runs Algorithm 2 to exhaustion and records
/// `(|𝒫↓S|_M, |𝒫↓S|_V)` after every step — the multi-tree counterpart of
/// [`crate::optimal::optimal_frontier`] (approximate: each point is the
/// greedy choice, not necessarily Pareto-optimal). The first entry is the
/// identity abstraction.
pub fn greedy_frontier<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
) -> Result<Vec<(usize, usize)>, TreeError> {
    greedy_frontier_with(polys, forest, run_incremental)
}

/// [`greedy_frontier`] driven by the reference engine.
pub fn greedy_frontier_reference<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
) -> Result<Vec<(usize, usize)>, TreeError> {
    greedy_frontier_with(polys, forest, run_reference)
}

/// What an engine returns: the final membership bitmaps, the final
/// working set when the engine maintains one (the incremental engine's
/// working set *is* `𝒫↓S`, so no re-application is needed; the reference
/// engine returns `None` and defers to [`evaluate_vvs`]), and how the
/// run ended (complete, or interrupted by its guard mid-selection).
type EngineOutcome<C> = (Vec<Vec<bool>>, Option<WorkingSet<C>>, Completion);

/// An engine's signature: polynomials, cleaned forest, loss budget `k`,
/// the guard its selection loop checks per step, and a per-step
/// observer.
type Engine<C> =
    fn(&PolySet<C>, &Forest, usize, &Guard, &mut dyn FnMut(usize, usize)) -> EngineOutcome<C>;

/// Shared preamble/postamble of [`greedy_vvs`] over a pluggable engine.
fn greedy_vvs_with<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
    guard: &Guard,
    engine: Engine<C>,
) -> Result<(AbstractionResult, Completion), TreeError> {
    let cleaned = prepare(polys, forest)?;
    let total_m = polys.size_m();
    if bound >= total_m {
        let vvs = Vvs::identity(&cleaned);
        return Ok((evaluate_vvs(polys, &cleaned, vvs), Completion::Complete));
    }
    if cleaned.num_trees() == 0 {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: total_m,
        });
    }
    let k = total_m - bound;
    let (in_s, ws, completion) = engine(polys, &cleaned, k, guard, &mut |_, _| {});
    let vvs = vvs_from_membership(&in_s);
    debug_assert!(vvs.validate(&cleaned).is_ok());
    let result = match ws {
        Some(ws) => AbstractionResult {
            forest: cleaned,
            vvs,
            original_size_m: total_m,
            original_size_v: polys.size_v(),
            compressed_size_m: ws.size_m(),
            compressed_size_v: ws.size_v(),
        },
        None => evaluate_vvs(polys, &cleaned, vvs),
    };
    // An interrupted run is exempt from the adequacy check: its contract
    // is "the best valid abstraction reached in the budget", which may
    // legitimately still be above the bound.
    if completion.is_complete() && !result.is_adequate_for(bound) {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: result.compressed_size_m,
        });
    }
    Ok((result, completion))
}

/// [`greedy_vvs`] in the interned currency end-to-end: consumes an
/// already-interned working set (the engine rewrites a clone of it — the
/// arena is never re-built from monomials) and returns the selection
/// *together with* the rewritten `𝒫↓S`, ready to freeze for evaluation.
/// The chosen VVS and all measures are identical to [`greedy_vvs`] on the
/// materialised poly-set.
pub fn greedy_vvs_interned<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<InternedAbstraction<C>, TreeError> {
    let guard = Guard::ambient().unwrap_or_default();
    greedy_vvs_interned_guarded(source, forest, bound, &guard).map(|(abs, _)| abs)
}

/// [`greedy_vvs_interned`] under an execution [`Guard`] — the same
/// anytime contract as [`greedy_vvs_guarded`]: a tripped guard returns
/// the best-so-far working set tagged [`Completion::Interrupted`], and
/// only complete runs can fail with [`TreeError::BoundUnattainable`].
pub fn greedy_vvs_interned_guarded<C: Coefficient>(
    source: &WorkingSet<C>,
    forest: &Forest,
    bound: usize,
    guard: &Guard,
) -> Result<(InternedAbstraction<C>, Completion), TreeError> {
    let cleaned = prepare_interned(source, forest)?;
    let total_m = source.size_m();
    if bound >= total_m {
        let vvs = Vvs::identity(&cleaned);
        return Ok((
            evaluate_vvs_interned(source.clone(), &cleaned, vvs),
            Completion::Complete,
        ));
    }
    if cleaned.num_trees() == 0 {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: total_m,
        });
    }
    let original_size_v = source.size_v();
    let k = total_m - bound;
    let (in_s, ws, completion) =
        run_incremental_ws(source.clone(), &cleaned, k, guard, &mut |_, _| {});
    let vvs = vvs_from_membership(&in_s);
    debug_assert!(vvs.validate(&cleaned).is_ok());
    let result = AbstractionResult {
        forest: cleaned,
        vvs,
        original_size_m: total_m,
        original_size_v,
        compressed_size_m: ws.size_m(),
        compressed_size_v: ws.size_v(),
    };
    if completion.is_complete() && !result.is_adequate_for(bound) {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: result.compressed_size_m,
        });
    }
    Ok((
        InternedAbstraction {
            result,
            working: ws,
        },
        completion,
    ))
}

/// Shared scaffolding of [`greedy_frontier`] over a pluggable engine.
fn greedy_frontier_with<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    engine: Engine<C>,
) -> Result<Vec<(usize, usize)>, TreeError> {
    let cleaned = prepare(polys, forest)?;
    let total_m = polys.size_m();
    let total_v = polys.size_v();
    let mut out = vec![(total_m, total_v)];
    if cleaned.num_trees() == 0 {
        return Ok(out);
    }
    let guard = Guard::ambient().unwrap_or_default();
    engine(polys, &cleaned, usize::MAX, &guard, &mut |ml, vl| {
        out.push((total_m - ml, total_v - vl));
    });
    Ok(out)
}

/// Converts per-tree membership bitmaps into a [`Vvs`].
fn vvs_from_membership(in_s: &[Vec<bool>]) -> Vvs {
    Vvs::from_per_tree(
        in_s.iter()
            .map(|bits| {
                bits.iter()
                    .enumerate()
                    .filter_map(|(i, &b)| b.then_some(NodeId(i as u32)))
                    .collect()
            })
            .collect(),
    )
}

/// Initial membership bitmaps: `S` starts as the set of all leaves
/// (lines 1–5 of Algorithm 2).
fn leaf_membership(cleaned: &Forest) -> Vec<Vec<bool>> {
    cleaned
        .trees()
        .iter()
        .map(|t| {
            let mut v = vec![false; t.num_nodes()];
            for l in t.leaves() {
                v[l.index()] = true;
            }
            v
        })
        .collect()
}

/// Initial candidates: nodes whose children are all in `S` (lines 6–9).
fn initial_candidates(cleaned: &Forest, in_s: &[Vec<bool>]) -> Vec<(usize, NodeId)> {
    let mut candidates = Vec::new();
    for (ti, tree) in cleaned.trees().iter().enumerate() {
        for n in tree.node_ids() {
            if !tree.is_leaf(n) && tree.children(n).iter().all(|c| in_s[ti][c.index()]) {
                candidates.push((ti, n));
            }
        }
    }
    candidates
}

/// The reference greedy main loop: starts from all leaves, swaps in
/// candidates until the monomial loss reaches `k` or candidates run out.
/// Calls `observer(ml_total, vl_total)` after every applied step. Returns
/// the final membership bitmaps.
///
/// Every iteration recomputes each minimal-VL candidate's monomial loss
/// from scratch and rewrites the affected polynomials with
/// [`map_vars`](provabs_provenance::polynomial::Polynomial::map_vars).
fn run_reference<C: Coefficient>(
    polys: &PolySet<C>,
    cleaned: &Forest,
    k: usize,
    guard: &Guard,
    observer: &mut dyn FnMut(usize, usize),
) -> EngineOutcome<C> {
    let mut in_s = leaf_membership(cleaned);
    let mut candidates = initial_candidates(cleaned, &in_s);

    // Working copy of the polynomials plus the postings index, so
    // candidate evaluation and application touch only affected
    // polynomials.
    let mut current: Vec<provabs_provenance::polynomial::Polynomial<C>> =
        polys.iter().cloned().collect();
    let mut postings = build_postings(&current);
    let mut ml_total = 0usize;
    let mut vl_total = 0usize;
    let mut completion = Completion::Complete;
    let mut checkpoint = guard.checkpoint();
    let mut steps_done = 0usize;

    // Main loop (lines 10–14).
    while ml_total < k && !candidates.is_empty() {
        if let Err(reason) = checkpoint.tick() {
            completion = Completion::Interrupted {
                reason,
                steps: steps_done,
                size_reached: polys.size_m() - ml_total,
            };
            break;
        }
        // Variable loss of swapping in a candidate: children − 1 (after
        // cleaning every child variable occurs in the polynomials).
        let min_vl = candidates
            .iter()
            .map(|&(ti, n)| cleaned.tree(ti).children(n).len() - 1)
            .min()
            .expect("non-empty");
        // Tie-break on the larger monomial loss, then label order.
        let mut best: Option<(usize, (usize, NodeId))> = None; // (ml_delta, cand)
        for &(ti, n) in &candidates {
            let tree = cleaned.tree(ti);
            if tree.children(n).len() - 1 != min_vl {
                continue;
            }
            let group_vec: Vec<VarId> = tree.children(n).iter().map(|&c| tree.var_of(c)).collect();
            let group: FxHashSet<VarId> = group_vec.iter().copied().collect();
            let affected = affected_polys(&postings, &group_vec);
            let delta = ml_delta_of_group_in(&current, &affected, &group);
            let replace = match &best {
                None => true,
                Some((best_delta, (bti, bn))) => {
                    delta > *best_delta
                        || (delta == *best_delta
                            && tree.label_of(n) < cleaned.tree(*bti).label_of(*bn))
                }
            };
            if replace {
                best = Some((delta, (ti, n)));
            }
        }
        let (delta, (ti, chosen)) = best.expect("min_vl came from candidates");
        let tree = cleaned.tree(ti);

        // Apply: children leave S, the candidate joins (lines 11–12).
        let chosen_var = tree.var_of(chosen);
        let group_vec: Vec<VarId> = tree
            .children(chosen)
            .iter()
            .map(|&c| tree.var_of(c))
            .collect();
        let group: FxHashSet<VarId> = group_vec.iter().copied().collect();
        let affected = affected_polys(&postings, &group_vec);
        for &pi in &affected {
            current[pi] = current[pi].map_vars(|v| if group.contains(&v) { chosen_var } else { v });
        }
        for v in &group_vec {
            postings.remove(v);
        }
        let entry = postings.entry(chosen_var).or_default();
        *entry = merge_sorted(entry, &affected);
        ml_total += delta;
        vl_total += tree.children(chosen).len() - 1;
        for &c in tree.children(chosen) {
            in_s[ti][c.index()] = false;
        }
        in_s[ti][chosen.index()] = true;
        candidates.retain(|&c| c != (ti, chosen));

        // The parent may have become a candidate (lines 13–14).
        if let Some(parent) = tree.parent(chosen) {
            if tree.children(parent).iter().all(|c| in_s[ti][c.index()]) {
                candidates.push((ti, parent));
            }
        }
        steps_done += 1;
        observer(ml_total, vl_total);
    }
    (in_s, None, completion)
}

/// A cached candidate of the incremental engine.
struct Candidate {
    /// Tree and node this candidate would swap in.
    ti: usize,
    node: NodeId,
    /// `VL` of applying it: number of children − 1 (static).
    vl: usize,
    /// The children's variables — the group the merge substitutes.
    group: Vec<VarId>,
    /// Sorted polynomial indices containing any group variable. Fixed for
    /// the candidate's lifetime: postings entries of its group variables
    /// never change while the candidate exists (groups of distinct
    /// candidates are disjoint, and a candidate's parent only becomes a
    /// candidate after this one is applied and retired).
    affected: Vec<usize>,
    /// Cached `ML` delta, valid as of `computed_at`.
    delta: usize,
    /// Engine step count when `delta` was computed (0 = never).
    computed_at: u64,
    /// Cleared when the candidate is applied; stale bucket entries are
    /// skipped lazily.
    alive: bool,
}

/// The incremental greedy main loop over a [`PolySet`]: interns once,
/// then delegates to the id-space core.
fn run_incremental<C: Coefficient>(
    polys: &PolySet<C>,
    cleaned: &Forest,
    k: usize,
    guard: &Guard,
    observer: &mut dyn FnMut(usize, usize),
) -> EngineOutcome<C> {
    let (in_s, ws, completion) =
        run_incremental_ws(WorkingSet::from_polyset(polys), cleaned, k, guard, observer);
    (in_s, Some(ws), completion)
}

/// One applied selection step, as recorded by the traced engine: the
/// variable of the node swapped into `S`, the step's variable loss, and
/// the monomial-loss delta it realised on the engine's working set.
///
/// The sharding layer replays these records through its k-way merge —
/// the variable (not the [`NodeId`]) is what survives the move between a
/// shard's locally-cleaned forest and the global one, because cleaning
/// preserves variables while renumbering nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct TraceStep {
    /// The variable of the node this step swapped into `S`.
    pub(crate) var: VarId,
    /// Variable loss of the step (children − 1).
    pub(crate) vl: usize,
    /// Monomial-loss delta measured on the engine's working set.
    pub(crate) delta: usize,
}

/// The incremental greedy main loop: same selection rule and step
/// sequence as [`run_reference`], with the per-iteration work
/// delta-maintained (see the [module docs](self)). Consumes the working
/// set (rewriting it in place) and returns it — the final state *is*
/// `𝒫↓S` in interned form.
fn run_incremental_ws<C: Coefficient>(
    ws: WorkingSet<C>,
    cleaned: &Forest,
    k: usize,
    guard: &Guard,
    observer: &mut dyn FnMut(usize, usize),
) -> (Vec<Vec<bool>>, WorkingSet<C>, Completion) {
    run_incremental_ws_traced(ws, cleaned, k, guard, &mut |_, ml, vl| observer(ml, vl))
}

/// [`run_incremental_ws`] with a richer observer that also receives each
/// applied step as a [`TraceStep`] — the entry point of the shard trace
/// pass. The selection sequence is byte-for-byte the plain engine's; the
/// adapter in [`run_incremental_ws`] is the only difference.
pub(crate) fn run_incremental_ws_traced<C: Coefficient>(
    mut ws: WorkingSet<C>,
    cleaned: &Forest,
    k: usize,
    guard: &Guard,
    observer: &mut dyn FnMut(TraceStep, usize, usize),
) -> (Vec<Vec<bool>>, WorkingSet<C>, Completion) {
    let mut in_s = leaf_membership(cleaned);
    let mut postings = build_postings_ws(&ws);

    // Candidate slab + VL buckets. VL is bounded by the forest's maximal
    // fan-out, so buckets are a dense vector; dead entries are skipped
    // (and compacted) during bucket scans.
    let mut slab: Vec<Candidate> = Vec::new();
    let max_vl = cleaned
        .trees()
        .iter()
        .flat_map(|t| t.node_ids().map(|n| t.children(n).len()))
        .max()
        .unwrap_or(1);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_vl.max(1)];
    let mut live_candidates = 0usize;

    // Version stamps realise the dirty-set propagation: `poly_version[pi]`
    // is the step that last rewrote polynomial `pi`, and a cached delta is
    // stale iff any of its affected polynomials changed after it was
    // computed — exactly "affected ∩ applied postings ≠ ∅", evaluated
    // lazily so candidates outside the scanned bucket never pay for it.
    let mut poly_version: Vec<u64> = vec![1; ws.num_polys()];
    let mut step: u64 = 1;

    let add_candidate = |ti: usize,
                         node: NodeId,
                         postings: &Postings,
                         slab: &mut Vec<Candidate>,
                         buckets: &mut Vec<Vec<usize>>| {
        let tree = cleaned.tree(ti);
        let group: Vec<VarId> = tree
            .children(node)
            .iter()
            .map(|&c| tree.var_of(c))
            .collect();
        let vl = group.len() - 1;
        let affected = affected_polys(postings, &group);
        let id = slab.len();
        slab.push(Candidate {
            ti,
            node,
            vl,
            group,
            affected,
            delta: 0,
            computed_at: 0,
            alive: true,
        });
        buckets[vl].push(id);
    };

    for (ti, node) in initial_candidates(cleaned, &in_s) {
        add_candidate(ti, node, &postings, &mut slab, &mut buckets);
        live_candidates += 1;
    }

    let mut ml_total = 0usize;
    let mut vl_total = 0usize;
    let mut completion = Completion::Complete;
    let mut checkpoint = guard.checkpoint();
    let mut steps_done = 0usize;

    while ml_total < k && live_candidates > 0 {
        if let Err(reason) = checkpoint.tick() {
            completion = Completion::Interrupted {
                reason,
                steps: steps_done,
                size_reached: ws.size_m(),
            };
            break;
        }
        // The minimal-VL bucket with a live candidate, compacting dead
        // entries on the way.
        let bucket_vl = buckets
            .iter_mut()
            .position(|b| {
                b.retain(|&id| slab[id].alive);
                !b.is_empty()
            })
            .expect("live_candidates > 0");

        // Refresh stale deltas and pick the bucket's best candidate:
        // maximal delta, ties towards the smaller label (labels are
        // unique forest-wide, so the choice is scan-order independent and
        // matches the reference engine).
        // The bucket is not mutated during the scan; detach it so slab
        // entries can be refreshed while iterating.
        let bucket = std::mem::take(&mut buckets[bucket_vl]);
        let mut best: Option<usize> = None;
        for &id in &bucket {
            let stale = {
                let c = &slab[id];
                c.computed_at == 0
                    || c.affected
                        .iter()
                        .any(|&pi| poly_version[pi] > c.computed_at)
            };
            if stale {
                let c = &mut slab[id];
                c.delta = ws.ml_delta_of_group(&c.group, &c.affected);
                c.computed_at = step;
            }
            let replace = match best {
                None => true,
                Some(b) => {
                    let (cand, cur) = (&slab[id], &slab[b]);
                    cand.delta > cur.delta
                        || (cand.delta == cur.delta
                            && cleaned.tree(cand.ti).label_of(cand.node)
                                < cleaned.tree(cur.ti).label_of(cur.node))
                }
            };
            if replace {
                best = Some(id);
            }
        }
        buckets[bucket_vl] = bucket;
        let chosen_id = best.expect("bucket is non-empty");
        let (ti, chosen, delta) = {
            let c = &slab[chosen_id];
            (c.ti, c.node, c.delta)
        };
        let tree = cleaned.tree(ti);
        let chosen_var = tree.var_of(chosen);

        // Apply the merge to the working set and bump the stamps of every
        // rewritten polynomial.
        step += 1;
        {
            let c = &slab[chosen_id];
            ws.apply_group(&c.group, chosen_var, &c.affected);
            for &pi in &c.affected {
                poly_version[pi] = step;
            }
            for v in &c.group {
                postings.remove(v);
            }
            let entry = postings.entry(chosen_var).or_default();
            *entry = merge_sorted(entry, &c.affected);
        }
        ml_total += delta;
        vl_total += slab[chosen_id].vl;
        for &c in tree.children(chosen) {
            in_s[ti][c.index()] = false;
        }
        in_s[ti][chosen.index()] = true;
        slab[chosen_id].alive = false;
        live_candidates -= 1;

        // The parent may have become a candidate (lines 13–14).
        if let Some(parent) = tree.parent(chosen) {
            if tree.children(parent).iter().all(|c| in_s[ti][c.index()]) {
                add_candidate(ti, parent, &postings, &mut slab, &mut buckets);
                live_candidates += 1;
            }
        }
        steps_done += 1;
        observer(
            TraceStep {
                var: chosen_var,
                vl: slab[chosen_id].vl,
                delta,
            },
            ml_total,
            vl_total,
        );
    }
    // The working set already is `𝒫↓S`: hand it back so the caller skips
    // the wholesale re-application (and can keep speaking ids).
    (in_s, ws, completion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_provenance::parse::parse_polyset;
    use provabs_provenance::var::VarTable;
    use provabs_trees::builder::TreeBuilder;
    use provabs_trees::generate::{months_tree, plans_tree};

    fn example_15() -> (PolySet<f64>, Forest, VarTable) {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        let forest =
            Forest::new(vec![plans_tree(&mut vars), months_tree(&mut vars)]).expect("disjoint");
        (polys, forest, vars)
    }

    #[test]
    fn example_15_trace() {
        // B = 4, k = 10. The greedy run of Example 15 selects q1, SB, B
        // (Business), Sp (Special) and terminates with ML = 11, VL = 5.
        let (polys, forest, _) = example_15();
        let r = greedy_vvs(&polys, &forest, 4).expect("adequate");
        assert_eq!(r.ml(), 11);
        assert_eq!(r.vl(), 5);
        assert_eq!(r.compressed_size_m, 3);
        // S = {p1, Business, Special, q1} (p1 stays a leaf).
        assert_eq!(
            r.vvs.labels(&r.forest),
            ["Business", "Special", "p1", "q1"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
        // The optimal VVS for this bound is {q1, Sp, SB, e, p1} with
        // ML = 10, VL = 4 — the greedy result is adequate but not optimal
        // (exactly the paper's observation).
        let opt_labels = ["SB", "Special", "e", "p1", "q1"];
        let opt = Vvs::from_labels(
            &r.forest,
            &{
                // labels live in the shared table; rebuild lookup through it
                let (_, _, vars) = example_15();
                vars
            },
            &opt_labels,
        )
        .expect("labels");
        let opt_res = evaluate_vvs(&polys, &r.forest, opt);
        assert_eq!(opt_res.ml(), 10);
        assert_eq!(opt_res.vl(), 4);
    }

    #[test]
    fn reference_engine_agrees_on_example_15() {
        let (polys, forest, _) = example_15();
        for bound in 1..=polys.size_m() {
            let inc = greedy_vvs(&polys, &forest, bound);
            let refr = greedy_vvs_reference(&polys, &forest, bound);
            match (inc, refr) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.vvs, b.vvs, "bound {bound}");
                    assert_eq!(a.compressed_size_m, b.compressed_size_m);
                    assert_eq!(a.compressed_size_v, b.compressed_size_v);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "bound {bound}"),
                (a, b) => panic!("engines disagree at bound {bound}: {a:?} vs {b:?}"),
            }
        }
        assert_eq!(
            greedy_frontier(&polys, &forest).expect("runs"),
            greedy_frontier_reference(&polys, &forest).expect("runs"),
        );
    }

    #[test]
    fn interned_entry_point_matches_polyset_entry_point() {
        let (polys, forest, _) = example_15();
        let source = WorkingSet::from_polyset(&polys);
        for bound in 1..=polys.size_m() + 1 {
            let by_polys = greedy_vvs(&polys, &forest, bound);
            let by_ws = greedy_vvs_interned(&source, &forest, bound);
            match (by_polys, by_ws) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.vvs, b.result.vvs, "bound {bound}");
                    assert_eq!(a.compressed_size_m, b.result.compressed_size_m);
                    assert_eq!(a.compressed_size_v, b.result.compressed_size_v);
                    assert_eq!(a.original_size_m, b.result.original_size_m);
                    assert_eq!(a.original_size_v, b.result.original_size_v);
                    // The returned working set is the abstracted set.
                    assert_eq!(b.working.size_m(), b.result.compressed_size_m);
                    assert_eq!(b.working.size_v(), b.result.compressed_size_v);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "bound {bound}"),
                (a, b) => panic!("entry points disagree at bound {bound}: {a:?} vs {b:?}"),
            }
        }
        // The source set is never mutated by the runs above.
        assert_eq!(source.size_m(), polys.size_m());
        assert_eq!(source.size_v(), polys.size_v());
    }

    #[test]
    fn greedy_is_adequate_when_possible() {
        let (polys, forest, _) = example_15();
        for bound in 3..polys.size_m() {
            match greedy_vvs(&polys, &forest, bound) {
                Ok(r) => {
                    assert!(r.is_adequate_for(bound), "bound {bound}");
                    r.vvs.validate(&r.forest).expect("valid VVS");
                }
                Err(TreeError::BoundUnattainable { best_possible, .. }) => {
                    // Full compression leaves one monomial per (poly, month
                    // structure): here 2 polys × 1 merged monomial… the
                    // floor is what exhausting all candidates achieves.
                    assert!(best_possible > bound, "bound {bound}");
                }
                Err(e) => panic!("unexpected error at bound {bound}: {e}"),
            }
        }
    }

    #[test]
    fn unattainable_bound_reports_floor() {
        let (polys, forest, _) = example_15();
        // Maximal compression: Plans ∪ Year → each poly collapses to a
        // single monomial Plans·Year ⇒ floor is 2.
        let err = greedy_vvs(&polys, &forest, 1).expect_err("floor is 2");
        assert_eq!(
            err,
            TreeError::BoundUnattainable {
                bound: 1,
                best_possible: 2
            }
        );
    }

    #[test]
    fn loose_bound_returns_identity() {
        let (polys, forest, _) = example_15();
        let r = greedy_vvs(&polys, &forest, 100).expect("identity");
        assert_eq!(r.ml(), 0);
        assert_eq!(r.vl(), 0);
    }

    #[test]
    fn frontier_traces_every_step() {
        let (polys, forest, _) = example_15();
        let frontier = greedy_frontier(&polys, &forest).expect("runs");
        // Starts at the identity point.
        assert_eq!(frontier[0], (polys.size_m(), polys.size_v()));
        // Sizes weakly decrease, granularity strictly decreases per step.
        for w in frontier.windows(2) {
            assert!(w[1].0 <= w[0].0);
            assert!(w[1].1 < w[0].1);
        }
        // Exhaustion: the last point is the maximal greedy compression —
        // both trees fully abstracted, 1 monomial per polynomial.
        assert_eq!(frontier.last().expect("non-empty").0, 2);
        // Every frontier point is realised by some greedy run: checking
        // the recorded sizes against an actual run at that bound.
        for &(size, granularity) in &frontier {
            match greedy_vvs(&polys, &forest, size) {
                Ok(r) => {
                    assert!(r.compressed_size_m <= size);
                    assert!(r.compressed_size_v >= granularity);
                }
                Err(e) => panic!("frontier point ({size}, {granularity}) unreachable: {e}"),
            }
        }
    }

    #[test]
    fn single_tree_greedy_matches_optimal_on_easy_instance() {
        // A flat instance where greedy and optimal coincide.
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·a·x + 1·b·x + 1·c·y + 1·d·y", &mut vars).expect("parse");
        let tree = TreeBuilder::new("R")
            .child("R", "g1")
            .child("R", "g2")
            .leaves("g1", ["a", "b"])
            .leaves("g2", ["c", "d"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        let g = greedy_vvs(&polys, &forest, 3).expect("adequate");
        let o = crate::optimal::optimal_vvs(&polys, &forest, 3).expect("adequate");
        assert_eq!(g.vl(), o.vl());
        assert_eq!(g.compressed_size_m, 3);
    }

    #[test]
    fn merged_postings_match_scan() {
        let (polys, _, mut vars) = example_15();
        let current: Vec<_> = polys.iter().cloned().collect();
        let postings = build_postings(&current);
        let group: Vec<VarId> = ["b1", "b2", "e", "f1"]
            .iter()
            .map(|l| vars.intern(l))
            .collect();
        let merged = affected_polys(&postings, &group);
        // Oracle: direct scan.
        let mut scan: Vec<usize> = current
            .iter()
            .enumerate()
            .filter(|(_, p)| p.iter().any(|(m, _)| m.vars().any(|v| group.contains(&v))))
            .map(|(pi, _)| pi)
            .collect();
        scan.sort_unstable();
        assert_eq!(merged, scan);
        assert!(affected_polys(&postings, &[]).is_empty());
    }
}
