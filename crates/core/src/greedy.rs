//! Algorithm 2: greedy valid-variable selection for multiple trees.
//!
//! Optimal selection over an arbitrary forest is NP-hard (Prop. 11), so
//! the greedy heuristic maintains a VVS `S` (initially all leaves) and a
//! candidate set `C` of nodes whose children are all in `S`. While the
//! accumulated monomial loss is below `k = |𝒫|_M − B` and candidates
//! remain, it replaces the children of the candidate with the *minimal
//! variable loss* by the candidate itself. Ties on variable loss are
//! broken towards the larger monomial loss measured on the *current*
//! (partially abstracted) polynomials — this reproduces Example 15, where
//! `q1` is preferred over `SB` (both lose one variable, but `q1` saves 7
//! monomials and `SB` only 2); remaining ties fall back to label order
//! for determinism ("ties are broken arbitrarily").
//!
//! Complexity: `O(n · |𝒫|_M)` — each of the at most `n` iterations
//! rewrites the current polynomials once (§3.2).

use crate::loss::ml_delta_of_group_in;
use crate::problem::{evaluate_vvs, prepare, AbstractionResult};
use provabs_provenance::coeff::Coefficient;
use provabs_provenance::fxhash::{FxHashMap, FxHashSet};
use provabs_provenance::polyset::PolySet;
use provabs_provenance::var::VarId;
use provabs_trees::cut::Vvs;
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;
use provabs_trees::tree::NodeId;

/// Sorted list of polynomial indices containing any variable of `group`.
fn affected_polys(
    postings: &FxHashMap<VarId, FxHashSet<usize>>,
    group: &FxHashSet<VarId>,
) -> Vec<usize> {
    let mut out: Vec<usize> = group
        .iter()
        .filter_map(|v| postings.get(v))
        .flatten()
        .copied()
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Runs Algorithm 2. Works for any number of trees (including one, where
/// it is a fast but possibly sub-optimal alternative to
/// [`crate::optimal::optimal_vvs`]).
///
/// Returns [`TreeError::BoundUnattainable`] when even exhausting every
/// candidate cannot reach `bound`; the error carries the best size the
/// greedy run achieved.
///
/// ```
/// use provabs_provenance::{parse::parse_polyset, VarTable};
/// use provabs_trees::{builder::TreeBuilder, forest::Forest};
/// use provabs_core::greedy::greedy_vvs;
///
/// let mut vars = VarTable::new();
/// let polys = parse_polyset("1·a·x + 2·b·x + 3·a·y + 4·b·y", &mut vars).unwrap();
/// let t1 = TreeBuilder::new("AB").leaves("AB", ["a", "b"]).build(&mut vars).unwrap();
/// let t2 = TreeBuilder::new("XY").leaves("XY", ["x", "y"]).build(&mut vars).unwrap();
/// let forest = Forest::new(vec![t1, t2]).unwrap();
/// // Two trees: the optimal DP does not apply, the greedy does.
/// let result = greedy_vvs(&polys, &forest, 2).unwrap();
/// assert!(result.compressed_size_m <= 2);
/// ```
pub fn greedy_vvs<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    bound: usize,
) -> Result<AbstractionResult, TreeError> {
    let cleaned = prepare(polys, forest)?;
    let total_m = polys.size_m();
    if bound >= total_m {
        let vvs = Vvs::identity(&cleaned);
        return Ok(evaluate_vvs(polys, &cleaned, vvs));
    }
    if cleaned.num_trees() == 0 {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: total_m,
        });
    }
    let k = total_m - bound;
    let in_s = run(polys, &cleaned, k, |_, _| {});
    let vvs = vvs_from_membership(&in_s);
    debug_assert!(vvs.validate(&cleaned).is_ok());
    let result = evaluate_vvs(polys, &cleaned, vvs);
    if !result.is_adequate_for(bound) {
        return Err(TreeError::BoundUnattainable {
            bound,
            best_possible: result.compressed_size_m,
        });
    }
    Ok(result)
}

/// The greedy trade-off trace: runs Algorithm 2 to exhaustion and records
/// `(|𝒫↓S|_M, |𝒫↓S|_V)` after every step — the multi-tree counterpart of
/// [`crate::optimal::optimal_frontier`] (approximate: each point is the
/// greedy choice, not necessarily Pareto-optimal). The first entry is the
/// identity abstraction.
pub fn greedy_frontier<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
) -> Result<Vec<(usize, usize)>, TreeError> {
    let cleaned = prepare(polys, forest)?;
    let total_m = polys.size_m();
    let total_v = polys.size_v();
    let mut out = vec![(total_m, total_v)];
    if cleaned.num_trees() == 0 {
        return Ok(out);
    }
    run(polys, &cleaned, usize::MAX, |ml, vl| {
        out.push((total_m - ml, total_v - vl));
    });
    Ok(out)
}

/// Converts per-tree membership bitmaps into a [`Vvs`].
fn vvs_from_membership(in_s: &[Vec<bool>]) -> Vvs {
    Vvs::from_per_tree(
        in_s.iter()
            .map(|bits| {
                bits.iter()
                    .enumerate()
                    .filter_map(|(i, &b)| b.then_some(NodeId(i as u32)))
                    .collect()
            })
            .collect(),
    )
}

/// The greedy main loop: starts from all leaves, swaps in candidates
/// until the monomial loss reaches `k` or candidates run out. Calls
/// `observer(ml_total, vl_total)` after every applied step. Returns the
/// final membership bitmaps.
fn run<C: Coefficient>(
    polys: &PolySet<C>,
    cleaned: &Forest,
    k: usize,
    mut observer: impl FnMut(usize, usize),
) -> Vec<Vec<bool>> {
    // S as per-tree membership bitmaps, initialised to the leaves
    // (lines 1–5).
    let mut in_s: Vec<Vec<bool>> = cleaned
        .trees()
        .iter()
        .map(|t| {
            let mut v = vec![false; t.num_nodes()];
            for l in t.leaves() {
                v[l.index()] = true;
            }
            v
        })
        .collect();

    // Candidates: nodes whose children are all in S (lines 6–9).
    let mut candidates: Vec<(usize, NodeId)> = Vec::new();
    for (ti, tree) in cleaned.trees().iter().enumerate() {
        for n in tree.node_ids() {
            if !tree.is_leaf(n) && tree.children(n).iter().all(|c| in_s[ti][c.index()]) {
                candidates.push((ti, n));
            }
        }
    }

    // Working copy of the polynomials plus an inverted index
    // `variable → polynomial postings`, so candidate evaluation and
    // application touch only affected polynomials.
    let mut current: Vec<provabs_provenance::polynomial::Polynomial<C>> =
        polys.iter().cloned().collect();
    let mut postings: FxHashMap<VarId, FxHashSet<usize>> = FxHashMap::default();
    for (pi, p) in current.iter().enumerate() {
        for (m, _) in p.iter() {
            for v in m.vars() {
                postings.entry(v).or_default().insert(pi);
            }
        }
    }
    let mut ml_total = 0usize;
    let mut vl_total = 0usize;

    // Main loop (lines 10–14).
    while ml_total < k && !candidates.is_empty() {
        // Variable loss of swapping in a candidate: children − 1 (after
        // cleaning every child variable occurs in the polynomials).
        let min_vl = candidates
            .iter()
            .map(|&(ti, n)| cleaned.tree(ti).children(n).len() - 1)
            .min()
            .expect("non-empty");
        // Tie-break on the larger monomial loss, then label order.
        let mut best: Option<(usize, (usize, NodeId))> = None; // (ml_delta, cand)
        for &(ti, n) in &candidates {
            let tree = cleaned.tree(ti);
            if tree.children(n).len() - 1 != min_vl {
                continue;
            }
            let group: FxHashSet<VarId> =
                tree.children(n).iter().map(|&c| tree.var_of(c)).collect();
            let affected = affected_polys(&postings, &group);
            let delta = ml_delta_of_group_in(&current, &affected, &group);
            let replace = match &best {
                None => true,
                Some((best_delta, (bti, bn))) => {
                    delta > *best_delta
                        || (delta == *best_delta
                            && tree.label_of(n) < cleaned.tree(*bti).label_of(*bn))
                }
            };
            if replace {
                best = Some((delta, (ti, n)));
            }
        }
        let (delta, (ti, chosen)) = best.expect("min_vl came from candidates");
        let tree = cleaned.tree(ti);

        // Apply: children leave S, the candidate joins (lines 11–12).
        let chosen_var = tree.var_of(chosen);
        let group: FxHashSet<VarId> = tree
            .children(chosen)
            .iter()
            .map(|&c| tree.var_of(c))
            .collect();
        let affected = affected_polys(&postings, &group);
        for &pi in &affected {
            current[pi] = current[pi].map_vars(|v| if group.contains(&v) { chosen_var } else { v });
        }
        for v in &group {
            postings.remove(v);
        }
        postings
            .entry(chosen_var)
            .or_default()
            .extend(affected.iter().copied());
        ml_total += delta;
        vl_total += tree.children(chosen).len() - 1;
        for &c in tree.children(chosen) {
            in_s[ti][c.index()] = false;
        }
        in_s[ti][chosen.index()] = true;
        candidates.retain(|&c| c != (ti, chosen));

        // The parent may have become a candidate (lines 13–14).
        if let Some(parent) = tree.parent(chosen) {
            if tree.children(parent).iter().all(|c| in_s[ti][c.index()]) {
                candidates.push((ti, parent));
            }
        }
        observer(ml_total, vl_total);
    }
    in_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_provenance::parse::parse_polyset;
    use provabs_provenance::var::VarTable;
    use provabs_trees::builder::TreeBuilder;
    use provabs_trees::generate::{months_tree, plans_tree};

    fn example_15() -> (PolySet<f64>, Forest, VarTable) {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        let forest =
            Forest::new(vec![plans_tree(&mut vars), months_tree(&mut vars)]).expect("disjoint");
        (polys, forest, vars)
    }

    #[test]
    fn example_15_trace() {
        // B = 4, k = 10. The greedy run of Example 15 selects q1, SB, B
        // (Business), Sp (Special) and terminates with ML = 11, VL = 5.
        let (polys, forest, _) = example_15();
        let r = greedy_vvs(&polys, &forest, 4).expect("adequate");
        assert_eq!(r.ml(), 11);
        assert_eq!(r.vl(), 5);
        assert_eq!(r.compressed_size_m, 3);
        // S = {p1, Business, Special, q1} (p1 stays a leaf).
        assert_eq!(
            r.vvs.labels(&r.forest),
            ["Business", "Special", "p1", "q1"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
        // The optimal VVS for this bound is {q1, Sp, SB, e, p1} with
        // ML = 10, VL = 4 — the greedy result is adequate but not optimal
        // (exactly the paper's observation).
        let opt_labels = ["SB", "Special", "e", "p1", "q1"];
        let opt = Vvs::from_labels(
            &r.forest,
            &{
                // labels live in the shared table; rebuild lookup through it
                let (_, _, vars) = example_15();
                vars
            },
            &opt_labels,
        )
        .expect("labels");
        let opt_res = evaluate_vvs(&polys, &r.forest, opt);
        assert_eq!(opt_res.ml(), 10);
        assert_eq!(opt_res.vl(), 4);
    }

    #[test]
    fn greedy_is_adequate_when_possible() {
        let (polys, forest, _) = example_15();
        for bound in 3..polys.size_m() {
            match greedy_vvs(&polys, &forest, bound) {
                Ok(r) => {
                    assert!(r.is_adequate_for(bound), "bound {bound}");
                    r.vvs.validate(&r.forest).expect("valid VVS");
                }
                Err(TreeError::BoundUnattainable { best_possible, .. }) => {
                    // Full compression leaves one monomial per (poly, month
                    // structure): here 2 polys × 1 merged monomial… the
                    // floor is what exhausting all candidates achieves.
                    assert!(best_possible > bound, "bound {bound}");
                }
                Err(e) => panic!("unexpected error at bound {bound}: {e}"),
            }
        }
    }

    #[test]
    fn unattainable_bound_reports_floor() {
        let (polys, forest, _) = example_15();
        // Maximal compression: Plans ∪ Year → each poly collapses to a
        // single monomial Plans·Year ⇒ floor is 2.
        let err = greedy_vvs(&polys, &forest, 1).expect_err("floor is 2");
        assert_eq!(
            err,
            TreeError::BoundUnattainable {
                bound: 1,
                best_possible: 2
            }
        );
    }

    #[test]
    fn loose_bound_returns_identity() {
        let (polys, forest, _) = example_15();
        let r = greedy_vvs(&polys, &forest, 100).expect("identity");
        assert_eq!(r.ml(), 0);
        assert_eq!(r.vl(), 0);
    }

    #[test]
    fn frontier_traces_every_step() {
        let (polys, forest, _) = example_15();
        let frontier = greedy_frontier(&polys, &forest).expect("runs");
        // Starts at the identity point.
        assert_eq!(frontier[0], (polys.size_m(), polys.size_v()));
        // Sizes weakly decrease, granularity strictly decreases per step.
        for w in frontier.windows(2) {
            assert!(w[1].0 <= w[0].0);
            assert!(w[1].1 < w[0].1);
        }
        // Exhaustion: the last point is the maximal greedy compression —
        // both trees fully abstracted, 1 monomial per polynomial.
        assert_eq!(frontier.last().expect("non-empty").0, 2);
        // Every frontier point is realised by some greedy run: checking
        // the recorded sizes against an actual run at that bound.
        for &(size, granularity) in &frontier {
            match greedy_vvs(&polys, &forest, size) {
                Ok(r) => {
                    assert!(r.compressed_size_m <= size);
                    assert!(r.compressed_size_v >= granularity);
                }
                Err(e) => panic!("frontier point ({size}, {granularity}) unreachable: {e}"),
            }
        }
    }

    #[test]
    fn single_tree_greedy_matches_optimal_on_easy_instance() {
        // A flat instance where greedy and optimal coincide.
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·a·x + 1·b·x + 1·c·y + 1·d·y", &mut vars).expect("parse");
        let tree = TreeBuilder::new("R")
            .child("R", "g1")
            .child("R", "g2")
            .leaves("g1", ["a", "b"])
            .leaves("g2", ["c", "d"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        let g = greedy_vvs(&polys, &forest, 3).expect("adequate");
        let o = crate::optimal::optimal_vvs(&polys, &forest, 3).expect("adequate");
        assert_eq!(g.vl(), o.vl());
        assert_eq!(g.compressed_size_m, 3);
    }
}
