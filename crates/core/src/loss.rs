//! Monomial loss (`ML`) and variable loss (`VL`) computation.
//!
//! `ML_𝒫(S) = |𝒫|_M − |𝒫↓S|_M` and `VL_𝒫(S) = |𝒫|_V − |𝒫↓S|_V` (§3.1).
//!
//! [`ml_naive`] follows the definition (substitute and count). For a whole
//! tree, [`TreeLoss`] implements the efficient computation of §4.1: one
//! pass over the polynomials builds, for each leaf `l`, the set
//! `D_P[l] = { (M_l, exp) | M ∈ M(P), l ∈ M }` of *remainders* (the
//! monomial with `l` removed, plus `l`'s exponent — two monomials merge
//! under abstraction iff their remainders and exponents agree). Then for a
//! node `v` with descendant leaves `l_0..l_m`,
//! `ML({v}) = Σᵢ |D_P[l_i]| − |∪ᵢ D_P[l_i]|`, computed for *every* node in
//! one bottom-up merge (small-to-large, so the total work is
//! `O(|𝒫|_M · log n)`).

use provabs_provenance::coeff::Coefficient;
use provabs_provenance::fxhash::FxHashMap;
use provabs_provenance::monomial::Monomial;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::var::VarId;
use provabs_provenance::working::{MonoId, WorkingSet};
use provabs_trees::cut::Vvs;
use provabs_trees::forest::Forest;
use provabs_trees::tree::{AbsTree, NodeId};

/// `ML` of a full VVS by direct application (used as the test oracle and
/// for one-off evaluations).
pub fn ml_naive<C: Coefficient>(polys: &PolySet<C>, forest: &Forest, vvs: &Vvs) -> usize {
    polys.size_m() - vvs.apply(polys, forest).size_m()
}

/// `VL` of a full VVS by direct application.
pub fn vl_naive<C: Coefficient>(polys: &PolySet<C>, forest: &Forest, vvs: &Vvs) -> usize {
    polys.size_v() - vvs.apply(polys, forest).size_v()
}

/// Per-node `ML({v})` and `VL({v})` for one tree, precomputed with the
/// `D_P` remainder maps of §4.1.
#[derive(Clone, Debug)]
pub struct TreeLoss {
    /// `ml[v] = ML({v})`: monomials saved if all leaves below `v` merge.
    pub ml: Vec<usize>,
    /// `vl[v] = VL({v})`: number of descendant leaves minus one (0 for
    /// leaves). Assumes a cleaned tree (every leaf occurs in `𝒫`).
    pub vl: Vec<usize>,
}

impl TreeLoss {
    /// Builds the index for `tree` against `polys`.
    ///
    /// Requires compatibility: each monomial contains at most one node of
    /// `tree` (checked by [`Forest::check_compatible`] upstream; here a
    /// debug assertion).
    pub fn build<C: Coefficient>(polys: &PolySet<C>, tree: &AbsTree) -> Self {
        let n = tree.num_nodes();
        // Intern remainder keys (poly index, exponent, remainder monomial)
        // into dense ids; collect per-leaf id lists.
        let mut key_ids: FxHashMap<(usize, u32, Monomial), u32> = FxHashMap::default();
        let mut per_leaf: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pi, mono, _) in polys.monomials() {
            for v in mono.vars() {
                let Some(node) = tree.node_of_var(v) else {
                    continue;
                };
                debug_assert!(tree.is_leaf(node), "meta-variable in polynomials");
                let (rem, exp) = mono.remove_var(v);
                let next = key_ids.len() as u32;
                let id = *key_ids.entry((pi, exp, rem)).or_insert(next);
                per_leaf[node.index()].push(id);
                break; // compatibility: at most one tree node per monomial
            }
        }
        Self::from_per_leaf(tree, per_leaf)
    }

    /// [`TreeLoss::build`] over interned provenance: remainders come from
    /// the working set's memoised arena index (`u32` probes, no monomial
    /// hashing), so the whole computation stays in id space. The `ml`/`vl`
    /// values are identical to [`TreeLoss::build`] on the materialised
    /// poly-set — remainder ids are canonical for monomial equality within
    /// one arena.
    ///
    /// Takes `&mut` because remainder memoisation appends to the
    /// (append-only) arena.
    pub fn build_interned<C: Coefficient>(ws: &mut WorkingSet<C>, tree: &AbsTree) -> Self {
        let n = tree.num_nodes();
        // Dense remainder-class keys: (poly index, exponent, remainder id).
        let mut key_ids: FxHashMap<(usize, u32, MonoId), u32> = FxHashMap::default();
        let mut per_leaf: Vec<Vec<u32>> = vec![Vec::new(); n];
        for pi in 0..ws.num_polys() {
            let ids: Vec<MonoId> = ws.poly_mono_ids(pi).collect();
            for id in ids {
                // Compatibility: at most one tree node per monomial.
                let Some((node, v)) = ws
                    .mono(id)
                    .vars()
                    .find_map(|v| tree.node_of_var(v).map(|node| (node, v)))
                else {
                    continue;
                };
                debug_assert!(tree.is_leaf(node), "meta-variable in polynomials");
                let (rem, exp) = ws.arena_mut().remainder(id, v);
                let next = key_ids.len() as u32;
                let key = *key_ids.entry((pi, exp, rem)).or_insert(next);
                per_leaf[node.index()].push(key);
            }
        }
        Self::from_per_leaf(tree, per_leaf)
    }

    /// The shared bottom-up merge behind both builders: folds per-leaf
    /// remainder-class id lists into per-node `ML`/`VL` values
    /// (small-to-large, `O(|𝒫|_M · log n)`).
    fn from_per_leaf(tree: &AbsTree, mut per_leaf: Vec<Vec<u32>>) -> Self {
        let n = tree.num_nodes();
        let mut ml = vec![0usize; n];
        let mut vl = vec![0usize; n];
        let mut maps: Vec<Option<(FxHashMap<u32, u32>, usize)>> = (0..n).map(|_| None).collect();
        for id in tree.postorder() {
            if tree.is_leaf(id) {
                let entries = std::mem::take(&mut per_leaf[id.index()]);
                let total = entries.len();
                let mut map = FxHashMap::default();
                map.reserve(total);
                for e in entries {
                    *map.entry(e).or_insert(0) += 1;
                }
                maps[id.index()] = Some((map, total));
                // ml, vl stay 0 for leaves.
            } else {
                let mut acc: Option<(FxHashMap<u32, u32>, usize)> = None;
                for &c in tree.children(id) {
                    let child = maps[c.index()]
                        .take()
                        .expect("postorder visits children first");
                    acc = Some(match acc {
                        None => child,
                        Some((mut big, big_total)) => {
                            let (mut small, small_total) = child;
                            if small.len() > big.len() {
                                std::mem::swap(&mut big, &mut small);
                            }
                            for (k, v) in small {
                                *big.entry(k).or_insert(0) += v;
                            }
                            (big, big_total + small_total)
                        }
                    });
                }
                let (map, total) = acc.expect("internal node has children");
                ml[id.index()] = total - map.len();
                vl[id.index()] = tree.num_descendant_leaves(id) - 1;
                maps[id.index()] = Some((map, total));
            }
        }
        Self { ml, vl }
    }

    /// `ML({v})` for a single node.
    pub fn ml_of(&self, v: NodeId) -> usize {
        self.ml[v.index()]
    }

    /// `VL({v})` for a single node.
    pub fn vl_of(&self, v: NodeId) -> usize {
        self.vl[v.index()]
    }
}

/// The monomial-loss *delta* of replacing the variables `group` by a
/// single fresh variable, computed on the given polynomials. Used by the
/// greedy algorithm, whose candidate gains must be measured against the
/// *current* (already partially abstracted) polynomials.
pub fn ml_delta_of_group<C: Coefficient>(polys: &PolySet<C>, group: &[VarId]) -> usize {
    if group.len() < 2 {
        return 0;
    }
    let group_set: provabs_provenance::fxhash::FxHashSet<VarId> = group.iter().copied().collect();
    let indices: Vec<usize> = (0..polys.len()).collect();
    ml_delta_of_group_in(polys.as_slice(), &indices, &group_set)
}

/// [`ml_delta_of_group`] restricted to the polynomials at `poly_indices`
/// — the greedy algorithm keeps an inverted index `variable → polynomial
/// postings` so only affected polynomials are scanned.
pub fn ml_delta_of_group_in<C: Coefficient>(
    polys: &[provabs_provenance::polynomial::Polynomial<C>],
    poly_indices: &[usize],
    group: &provabs_provenance::fxhash::FxHashSet<VarId>,
) -> usize {
    if group.len() < 2 {
        return 0;
    }
    let mut affected = 0usize;
    let mut distinct: FxHashMap<(usize, u32, Monomial), ()> = FxHashMap::default();
    for &pi in poly_indices {
        for (mono, _) in polys[pi].iter() {
            for v in mono.vars() {
                if group.contains(&v) {
                    let (rem, exp) = mono.remove_var(v);
                    affected += 1;
                    distinct.insert((pi, exp, rem), ());
                    break;
                }
            }
        }
    }
    affected - distinct.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_provenance::parse::parse_polyset;
    use provabs_provenance::var::VarTable;
    use provabs_trees::builder::TreeBuilder;

    /// The cleaned plans tree of Example 13 over P1, P2.
    fn example_13() -> (PolySet<f64>, AbsTree, VarTable) {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3\n\
             77.9·b1·m1 + 80.5·b1·m3 + 52.2·e·m1 + 56.5·e·m3 \
             + 69.7·b2·m1 + 100.65·b2·m3",
            &mut vars,
        )
        .expect("parse");
        let tree = TreeBuilder::new("Plans")
            .child("Plans", "p1")
            .child("Plans", "Special")
            .child("Plans", "Business")
            .leaves("Special", ["f1", "y1", "v"])
            .child("Business", "SB")
            .child("Business", "e")
            .leaves("SB", ["b1", "b2"])
            .build(&mut vars)
            .expect("tree");
        (polys, tree, vars)
    }

    #[test]
    fn example_13_losses_via_remainder_maps() {
        let (polys, tree, vars) = example_13();
        let loss = TreeLoss::build(&polys, &tree);
        let node = |l: &str| {
            tree.node_of_var(vars.lookup(l).expect("interned"))
                .expect("in tree")
        };
        // "ASB[2] = 1 ... reduce the provenance by two monomials".
        assert_eq!(loss.ml_of(node("SB")), 2);
        assert_eq!(loss.vl_of(node("SB")), 1);
        // ASp[4] = 2 (Special merges f1, y1, v in both months).
        assert_eq!(loss.ml_of(node("Special")), 4);
        assert_eq!(loss.vl_of(node("Special")), 2);
        // Business merges b1, b2, e: 3 monomials → 1 per month.
        assert_eq!(loss.ml_of(node("Business")), 4);
        assert_eq!(loss.vl_of(node("Business")), 2);
        // Root merges everything: P1 8→2, P2 6→2 → ML = 10.
        assert_eq!(loss.ml_of(node("Plans")), 10);
        assert_eq!(loss.vl_of(node("Plans")), 6);
        // Leaves lose nothing.
        assert_eq!(loss.ml_of(node("p1")), 0);
        assert_eq!(loss.vl_of(node("p1")), 0);
    }

    #[test]
    fn efficient_ml_matches_naive_for_every_node() {
        let (polys, tree, _) = example_13();
        let forest = Forest::single(tree.clone());
        let loss = TreeLoss::build(&polys, &tree);
        for node in tree.node_ids() {
            if tree.is_leaf(node) {
                continue;
            }
            // VVS choosing only `node` (and every other leaf as itself).
            let mut chosen: Vec<NodeId> = tree
                .leaves()
                .into_iter()
                .filter(|&l| !tree.is_ancestor_or_self(node, l))
                .collect();
            chosen.push(node);
            let vvs = Vvs::from_per_tree(vec![chosen]);
            vvs.validate(&forest).expect("valid");
            assert_eq!(
                loss.ml_of(node),
                ml_naive(&polys, &forest, &vvs),
                "node {}",
                tree.label_of(node)
            );
        }
    }

    #[test]
    fn exponents_distinguish_remainders() {
        // x²·a and x·a must not merge with y·a when x,y → g, because the
        // exponents differ: x²·a → g²·a ≠ g·a.
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·x^2·a + 2·x·a + 3·y·a", &mut vars).expect("parse");
        let tree = TreeBuilder::new("g")
            .leaves("g", ["x", "y"])
            .build(&mut vars)
            .expect("tree");
        let loss = TreeLoss::build(&polys, &tree);
        // Only x·a and y·a merge → ML = 1.
        assert_eq!(loss.ml_of(tree.root()), 1);
        let forest = Forest::single(tree.clone());
        let vvs = Vvs::from_labels(&forest, &vars, &["g"]).expect("labels");
        assert_eq!(ml_naive(&polys, &forest, &vvs), 1);
    }

    #[test]
    fn monomials_in_different_polynomials_never_merge() {
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·x·a\n1·y·a", &mut vars).expect("parse");
        let tree = TreeBuilder::new("g")
            .leaves("g", ["x", "y"])
            .build(&mut vars)
            .expect("tree");
        let loss = TreeLoss::build(&polys, &tree);
        assert_eq!(loss.ml_of(tree.root()), 0);
    }

    #[test]
    fn interned_builder_matches_polyset_builder() {
        let (polys, tree, _) = example_13();
        let reference = TreeLoss::build(&polys, &tree);
        let mut ws = WorkingSet::from_polyset(&polys);
        let interned = TreeLoss::build_interned(&mut ws, &tree);
        for node in tree.node_ids() {
            assert_eq!(reference.ml_of(node), interned.ml_of(node));
            assert_eq!(reference.vl_of(node), interned.vl_of(node));
        }
        // The working set itself is untouched (only its arena grew).
        assert_eq!(ws.size_m(), polys.size_m());
        assert_eq!(ws.size_v(), polys.size_v());
    }

    #[test]
    fn ml_delta_of_group_matches_substitution() {
        let (polys, tree, vars) = example_13();
        let group: Vec<VarId> = ["b1", "b2", "e"]
            .iter()
            .map(|l| vars.lookup(l).expect("interned"))
            .collect();
        let delta = ml_delta_of_group(&polys, &group);
        // Same as abstracting Business directly.
        let loss = TreeLoss::build(&polys, &tree);
        let business = tree
            .node_of_var(vars.lookup("Business").expect("interned"))
            .expect("node");
        assert_eq!(delta, loss.ml_of(business));
        // Single-variable groups lose nothing.
        assert_eq!(ml_delta_of_group(&polys, &group[..1]), 0);
    }
}
