//! Problem definitions (§2.4) and result types.
//!
//! Given a polynomial set `𝒫`, a compatible abstraction forest `𝒯` and a
//! bound `B ∈ {1..|𝒫|_M}`, a VVS `S` is
//!
//! * **adequate** for `B` if `|𝒫↓S|_M ≤ B`,
//! * **precise** for `B, K` if `|𝒫↓S|_M = B` and `|𝒫↓S|_V = K`,
//! * **optimal** for `B` if adequate and no adequate VVS retains more
//!   distinct variables.
//!
//! All algorithms in this crate return an [`AbstractionResult`] carrying
//! the chosen VVS together with the (cleaned) forest it refers to and the
//! four size/granularity measures.

use provabs_provenance::coeff::Coefficient;
use provabs_provenance::polyset::PolySet;
use provabs_provenance::working::WorkingSet;
use provabs_trees::clean::{clean_forest, clean_forest_vars};
use provabs_trees::cut::Vvs;
use provabs_trees::error::TreeError;
use provabs_trees::forest::Forest;

/// The outcome of choosing a VVS for a polynomial set.
#[derive(Clone, Debug)]
pub struct AbstractionResult {
    /// The forest the VVS refers to (cleaned against the polynomials).
    pub forest: Forest,
    /// The chosen valid variable set.
    pub vvs: Vvs,
    /// `|𝒫|_M` before abstraction.
    pub original_size_m: usize,
    /// `|𝒫|_V` before abstraction.
    pub original_size_v: usize,
    /// `|𝒫↓S|_M` after abstraction.
    pub compressed_size_m: usize,
    /// `|𝒫↓S|_V` after abstraction.
    pub compressed_size_v: usize,
}

impl AbstractionResult {
    /// The induced monomial loss `ML(S) = |𝒫|_M − |𝒫↓S|_M`.
    pub fn ml(&self) -> usize {
        self.original_size_m - self.compressed_size_m
    }

    /// The induced variable loss `VL(S) = |𝒫|_V − |𝒫↓S|_V`.
    pub fn vl(&self) -> usize {
        self.original_size_v - self.compressed_size_v
    }

    /// Whether the abstraction is adequate for `bound` (Def. 7).
    pub fn is_adequate_for(&self, bound: usize) -> bool {
        self.compressed_size_m <= bound
    }

    /// Whether the abstraction is precise for `bound` and `granularity`.
    pub fn is_precise_for(&self, bound: usize, granularity: usize) -> bool {
        self.compressed_size_m == bound && self.compressed_size_v == granularity
    }

    /// Applies the chosen abstraction to a polynomial set (normally the
    /// one it was computed from): `𝒫↓S`.
    pub fn apply<C: Coefficient>(&self, polys: &PolySet<C>) -> PolySet<C> {
        self.vvs.apply(polys, &self.forest)
    }

    /// Compression ratio `|𝒫↓S|_M / |𝒫|_M` in `(0, 1]`.
    pub fn compression_ratio(&self) -> f64 {
        if self.original_size_m == 0 {
            1.0
        } else {
            self.compressed_size_m as f64 / self.original_size_m as f64
        }
    }
}

/// Applies `vvs` to `polys` and measures everything. `forest` must be the
/// forest the VVS was built over (typically already cleaned).
///
/// The measurement runs through a
/// [`WorkingSet`] rather than a
/// wholesale [`Vvs::apply`]: each distinct monomial is remapped exactly
/// once regardless of how many polynomials share it, and the merge is
/// `u32`-id accumulation instead of rebuilding monomial hash maps. The
/// sizes are identical to the direct application (the working set mirrors
/// `map_vars` term-set semantics); callers needing the materialised
/// `𝒫↓S` still use [`AbstractionResult::apply`].
pub fn evaluate_vvs<C: Coefficient>(
    polys: &PolySet<C>,
    forest: &Forest,
    vvs: Vvs,
) -> AbstractionResult {
    let subst = vvs.substitution(forest);
    let (compressed_size_m, compressed_size_v) = if subst.is_empty() {
        (polys.size_m(), polys.size_v())
    } else {
        let mut ws = provabs_provenance::working::WorkingSet::from_polyset(polys);
        ws.apply_var_map(|v| subst.target(v));
        (ws.size_m(), ws.size_v())
    };
    AbstractionResult {
        forest: forest.clone(),
        vvs,
        original_size_m: polys.size_m(),
        original_size_v: polys.size_v(),
        compressed_size_m,
        compressed_size_v,
    }
}

/// Cleans the forest against the polynomials and checks compatibility —
/// the shared preamble of every algorithm. Returns the cleaned forest.
pub fn prepare<C: Coefficient>(polys: &PolySet<C>, forest: &Forest) -> Result<Forest, TreeError> {
    let cleaned = clean_forest(forest, polys);
    cleaned.check_compatible(polys)?;
    Ok(cleaned)
}

/// [`prepare`] for interned provenance: the live-variable set and the
/// distinct live monomials are read straight from the working set's
/// arena, so no [`PolySet`] is materialised. Equivalent to
/// `prepare(&working.to_polyset(), forest)` in outcome.
pub fn prepare_interned<C: Coefficient>(
    working: &WorkingSet<C>,
    forest: &Forest,
) -> Result<Forest, TreeError> {
    let live = working.live_vars();
    let cleaned = clean_forest_vars(forest, &live);
    cleaned.check_compatible_parts(&live, working.live_monomials())?;
    Ok(cleaned)
}

/// An abstraction outcome carried in the interned currency: the selection
/// measures ([`AbstractionResult`]) together with the rewritten `𝒫↓S` as
/// a [`WorkingSet`] over the shared monomial arena. Callers evaluate it
/// by freezing ([`WorkingSet::freeze`]) instead of materialising a
/// [`PolySet`] and re-compiling — the id-to-id hand-off the pipeline is
/// built around.
#[derive(Clone, Debug)]
pub struct InternedAbstraction<C> {
    /// The selection outcome: chosen VVS, cleaned forest, size measures.
    pub result: AbstractionResult,
    /// The abstracted provenance `𝒫↓S` in interned form.
    pub working: WorkingSet<C>,
}

/// Applies `vvs` to an interned working set (consuming it) and measures
/// everything — the id-space counterpart of [`evaluate_vvs`], returning
/// both the measures and the rewritten working set so downstream layers
/// keep speaking ids. `forest` must be the forest the VVS was built over
/// (typically already cleaned).
pub fn evaluate_vvs_interned<C: Coefficient>(
    mut working: WorkingSet<C>,
    forest: &Forest,
    vvs: Vvs,
) -> InternedAbstraction<C> {
    let original_size_m = working.size_m();
    let original_size_v = working.size_v();
    let subst = vvs.substitution(forest);
    if !subst.is_empty() {
        working.apply_var_map(|v| subst.target(v));
    }
    let result = AbstractionResult {
        forest: forest.clone(),
        vvs,
        original_size_m,
        original_size_v,
        compressed_size_m: working.size_m(),
        compressed_size_v: working.size_v(),
    };
    InternedAbstraction { result, working }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provabs_provenance::parse::parse_polyset;
    use provabs_provenance::var::VarTable;
    use provabs_trees::builder::TreeBuilder;

    #[test]
    fn evaluate_vvs_measures_example_6() {
        let mut vars = VarTable::new();
        let polys = parse_polyset(
            "220.8·p1·m1 + 240·p1·m3 + 127.4·f1·m1 + 114.45·f1·m3 \
             + 75.9·y1·m1 + 72.5·y1·m3 + 42·v·m1 + 24.2·v·m3",
            &mut vars,
        )
        .expect("parse");
        let tree = TreeBuilder::new("Plans")
            .child("Plans", "Special")
            .leaves("Special", ["f1", "y1", "v"])
            .child("Plans", "p1")
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        let vvs = Vvs::from_labels(&forest, &vars, &["Plans"]).expect("labels");
        let r = evaluate_vvs(&polys, &forest, vvs);
        assert_eq!(r.original_size_m, 8);
        assert_eq!(r.original_size_v, 6);
        assert_eq!(r.compressed_size_m, 2);
        assert_eq!(r.compressed_size_v, 3);
        assert_eq!(r.ml(), 6);
        assert_eq!(r.vl(), 3);
        assert!(r.is_adequate_for(2));
        assert!(!r.is_adequate_for(1));
        assert!(r.is_precise_for(2, 3));
        assert!((r.compression_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn prepare_cleans_and_checks() {
        let mut vars = VarTable::new();
        let polys = parse_polyset("1·m1 + 2·m3", &mut vars).expect("parse");
        let tree = TreeBuilder::new("Year")
            .child("Year", "q1")
            .leaves("q1", ["m1", "m2", "m3"])
            .build(&mut vars)
            .expect("tree");
        let forest = Forest::single(tree);
        // m2 does not occur: raw forest is incompatible, prepare fixes it.
        assert!(forest.check_compatible(&polys).is_err());
        let cleaned = prepare(&polys, &forest).expect("prepare");
        assert_eq!(cleaned.num_trees(), 1);
        assert_eq!(cleaned.tree(0).num_leaves(), 2);
    }
}
